#include "core/emulator.hpp"

#include <cmath>
#include <optional>
#include <utility>

#include "climate/validate.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "linalg/solve.hpp"
#include "runtime/tiled_cholesky_rt.hpp"
#include "sht/packing.hpp"
#include "stats/covariance.hpp"

namespace exaclim::core {

ClimateEmulator::ClimateEmulator(EmulatorConfig config)
    : config_(std::move(config)) {
  EXACLIM_CHECK(config_.band_limit >= 4, "band limit must be >= 4");
  EXACLIM_CHECK(config_.ar_order >= 1, "AR order must be >= 1");
  EXACLIM_CHECK(config_.harmonics >= 0, "harmonics must be >= 0");
  EXACLIM_CHECK(config_.steps_per_year >= 1, "steps_per_year must be >= 1");
}

TrainReport ClimateEmulator::train(const climate::ClimateDataset& input,
                                   std::span<const double> annual_forcing) {
  const index_t L = config_.band_limit;
  const sht::GridShape grid = input.grid();
  const index_t num_points = grid.num_points();
  const index_t T = input.num_steps();
  const index_t R = input.num_ensembles();
  const index_t P = config_.ar_order;
  EXACLIM_CHECK(input.steps_per_year() == config_.steps_per_year,
                "dataset temporal resolution must match config");
  EXACLIM_CHECK(T > 2 * P, "too few time steps for the AR order");
  EXACLIM_CHECK(static_cast<index_t>(annual_forcing.size()) >=
                    input.num_years(),
                "forcing trajectory shorter than the dataset");

  TrainReport report;
  common::Timer total;

  // Input screening before any statistics touch the data: malformed cells
  // fail here as structured ValidationErrors naming exact coordinates, or —
  // under quarantine — are imputed into a private copy (never mutating the
  // caller's dataset).
  std::optional<climate::ClimateDataset> repaired;
  const climate::ClimateDataset* source = &input;
  if (config_.validate_input) {
    climate::ValidationOptions vopts;
    vopts.min_value = config_.valid_min;
    vopts.max_value = config_.valid_max;
    vopts.quarantine = config_.quarantine;
    climate::ValidationSummary vsum;
    if (config_.quarantine) {
      repaired.emplace(input);
      vsum = climate::validate_dataset(*repaired, vopts);
      source = &*repaired;
    } else {
      vsum = climate::validate_dataset(std::as_const(input), vopts);
    }
    report.validation_flagged = static_cast<index_t>(vsum.flagged());
    report.validation_quarantined = static_cast<index_t>(vsum.quarantined);
  }
  const climate::ClimateDataset& data = *source;
  plan_ = std::make_shared<const sht::SHTPlan>(L, grid);
  grid_ = grid;

  // ---- Stage 1: per-location trend/scale (Eq. 2) -------------------------
  common::Timer stage;
  trend_.assign(static_cast<std::size_t>(num_points), stats::TrendModel{});
  const stats::TrendFitConfig trend_cfg = config_.trend_config();
  common::parallel_for(
      0, num_points,
      [&](index_t p) {
        // Stack the R series for this point (r-major).
        std::vector<double> y(static_cast<std::size_t>(R * T));
        for (index_t r = 0; r < R; ++r) {
          for (index_t t = 0; t < T; ++t) {
            y[static_cast<std::size_t>(r * T + t)] =
                data.field(r, t)[static_cast<std::size_t>(p)];
          }
        }
        trend_[static_cast<std::size_t>(p)] =
            stats::fit_trend(y, R, T, annual_forcing, trend_cfg);
      },
      config_.threads == 0 ? common::default_thread_count() : config_.threads);
  report.trend_seconds = stage.seconds();

  // Cache m_t once (shared across ensembles).
  std::vector<std::vector<double>> trend_series_per_point(
      static_cast<std::size_t>(num_points));
  common::parallel_for(0, num_points, [&](index_t p) {
    trend_series_per_point[static_cast<std::size_t>(p)] =
        stats::trend_series(trend_[static_cast<std::size_t>(p)], T,
                            annual_forcing);
  });

  // ---- Stage 2: SHT of the standardized stochastic component -------------
  stage.reset();
  const index_t n_coeff = sh_coeff_count(L);
  // f[r][t] stored as one big row-major (R*T) x L^2 matrix.
  linalg::Matrix f(R * T, n_coeff);
  nugget_var_.assign(static_cast<std::size_t>(num_points), 0.0);
  // Deterministic reduction: the old mutex-guarded accumulation summed the
  // per-(r,t) residuals in completion order, so two identical runs drifted at
  // the last ulp. parallel_reduce fixes the chunking and combine order as a
  // function of R*T alone, making the nugget section bit-stable at any
  // --threads (ROADMAP "bit-reproducible training" item).
  const std::vector<double> nugget_acc = common::parallel_reduce(
      0, R * T, std::vector<double>(static_cast<std::size_t>(num_points), 0.0),
      [&](std::vector<double>& acc, index_t rt) {
        const index_t r = rt / T;
        const index_t t = rt % T;
        const auto obs = data.field(r, t);
        std::vector<double> z(static_cast<std::size_t>(num_points));
        for (index_t p = 0; p < num_points; ++p) {
          const auto& tm = trend_[static_cast<std::size_t>(p)];
          z[static_cast<std::size_t>(p)] =
              (obs[static_cast<std::size_t>(p)] -
               trend_series_per_point[static_cast<std::size_t>(p)]
                                     [static_cast<std::size_t>(t)]) /
              tm.sigma;
        }
        const std::vector<cplx> coeffs = plan_->analyze(z);
        const std::vector<double> packed = sht::pack_real(L, coeffs);
        std::copy(packed.begin(), packed.end(),
                  f.data() + static_cast<std::size_t>(rt) *
                                 static_cast<std::size_t>(n_coeff));
        // Truncation residual -> nugget variance accumulation.
        const std::vector<double> back = plan_->synthesize(coeffs);
        for (index_t p = 0; p < num_points; ++p) {
          const double e =
              z[static_cast<std::size_t>(p)] - back[static_cast<std::size_t>(p)];
          acc[static_cast<std::size_t>(p)] += e * e;
        }
      },
      [num_points](std::vector<double>& into, std::vector<double>&& from) {
        for (index_t p = 0; p < num_points; ++p) {
          into[static_cast<std::size_t>(p)] += from[static_cast<std::size_t>(p)];
        }
      },
      config_.threads == 0 ? common::default_thread_count() : config_.threads);
  for (index_t p = 0; p < num_points; ++p) {
    nugget_var_[static_cast<std::size_t>(p)] =
        nugget_acc[static_cast<std::size_t>(p)] / static_cast<double>(R * T);
  }
  report.sht_seconds = stage.seconds();

  // ---- Stage 3: diagonal VAR(P) -------------------------------------------
  stage.reset();
  ar_.assign(static_cast<std::size_t>(n_coeff), stats::ArModel{});
  common::parallel_for(
      0, n_coeff,
      [&](index_t c) {
        std::vector<double> series(static_cast<std::size_t>(R * T));
        for (index_t rt = 0; rt < R * T; ++rt) {
          series[static_cast<std::size_t>(rt)] = f(rt, c);
        }
        ar_[static_cast<std::size_t>(c)] =
            stats::fit_ar_ensemble(series, R, T, P);
      },
      config_.threads == 0 ? common::default_thread_count() : config_.threads);
  report.ar_seconds = stage.seconds();

  // ---- Stage 4: innovation covariance + Cholesky --------------------------
  stage.reset();
  const index_t n_samples = R * (T - P);
  report.innovation_samples = n_samples;
  linalg::Matrix xi(n_samples, n_coeff);
  common::parallel_for(0, n_coeff, [&](index_t c) {
    index_t row = 0;
    for (index_t r = 0; r < R; ++r) {
      for (index_t t = P; t < T; ++t) {
        double pred = 0.0;
        const auto& phi = ar_[static_cast<std::size_t>(c)].phi;
        for (index_t a = 0; a < P; ++a) {
          pred += phi[static_cast<std::size_t>(a)] * f(r * T + t - 1 - a, c);
        }
        xi(row, c) = f(r * T + t, c) - pred;
        ++row;
      }
    }
  });
  stats::PreparedCovariance prepared =
      stats::prepare_covariance(xi, config_.jitter_base);
  report.covariance_jitter = prepared.jitter;
  report.covariance_deficient = prepared.was_deficient;
  report.covariance_seconds = stage.seconds();

  // Mixed-precision tiled Cholesky of U-hat (the paper's headline solver).
  stage.reset();
  const index_t nb = std::min(config_.tile_size, n_coeff);
  const index_t nt = (n_coeff + nb - 1) / nb;
  linalg::TiledSymmetricMatrix tiled = linalg::TiledSymmetricMatrix::from_dense(
      prepared.u, nb,
      linalg::make_band_policy(nt, config_.cholesky_variant));
  if (config_.use_parallel_runtime) {
    runtime::RtCholeskyOptions rt_opt;
    rt_opt.threads = config_.threads;
    rt_opt.ft.enabled = config_.fault_tolerance;
    rt_opt.ft.integrity_checks = config_.fault_tolerance;
    rt_opt.ft.jitter_base = config_.jitter_base;
    rt_opt.ft.checkpoint_path = config_.checkpoint_path;
    rt_opt.ft.checkpoint_every = config_.checkpoint_every;
    rt_opt.ft.resume_path = config_.resume_path;
    rt_opt.ft.checkpoint_sync = config_.checkpoint_sync;
    rt_opt.stall_timeout_seconds = config_.stall_timeout_seconds;
    rt_opt.stall_grace_seconds = config_.stall_grace_seconds;
    rt_opt.verify = config_.verify_mode;
    const runtime::RtCholeskyResult rt =
        runtime::cholesky_tiled_parallel(tiled, rt_opt);
    report.precision_escalations = rt.precision_escalations;
    report.jitter_escalations = rt.jitter_escalations;
    report.checkpoints_written = rt.checkpoints_written;
    report.resumed_from_checkpoint = rt.resumed;
  } else {
    report.cholesky = linalg::cholesky_tiled(tiled);
  }
  factor_ = tiled.to_dense(/*lower_only=*/true);
  report.cholesky_seconds = stage.seconds();
  const double n_d = static_cast<double>(n_coeff);
  report.cholesky_gflops = n_d * n_d * n_d / 3.0 * 1e-9;

  trained_ = true;
  report.total_seconds = total.seconds();
  return report;
}

climate::ClimateDataset ClimateEmulator::emulate(
    index_t num_steps, index_t num_ensembles,
    std::span<const double> annual_forcing, std::uint64_t seed) const {
  EXACLIM_CHECK(trained_, "emulator has not been trained");
  EXACLIM_CHECK(num_steps >= 1 && num_ensembles >= 1,
                "need at least one step and one ensemble");
  const index_t tau = config_.steps_per_year;
  EXACLIM_CHECK(static_cast<index_t>(annual_forcing.size()) >=
                    (num_steps + tau - 1) / tau,
                "forcing trajectory shorter than requested emulation");
  const index_t L = config_.band_limit;
  const index_t n_coeff = sh_coeff_count(L);
  const index_t num_points = grid_.num_points();
  const index_t P = config_.ar_order;
  const index_t burn = config_.emulation_burn_in + P;

  climate::ClimateDataset out(grid_, num_steps, num_ensembles, tau);

  // Trend series are shared across ensembles; compute once in parallel.
  std::vector<std::vector<double>> trend_series_per_point(
      static_cast<std::size_t>(num_points));
  common::parallel_for(0, num_points, [&](index_t p) {
    trend_series_per_point[static_cast<std::size_t>(p)] =
        stats::trend_series(trend_[static_cast<std::size_t>(p)], num_steps,
                            annual_forcing);
  });

  common::Rng master(seed);
  for (index_t r = 0; r < num_ensembles; ++r) {
    common::Rng rng = master.split(static_cast<std::uint64_t>(r) + 0x5151);

    // VAR forward pass with burn-in (sequential in t, vectorized over c).
    linalg::Matrix coeff_series(num_steps, n_coeff);
    std::vector<std::vector<double>> history(
        static_cast<std::size_t>(P),
        std::vector<double>(static_cast<std::size_t>(n_coeff), 0.0));
    std::vector<double> current(static_cast<std::size_t>(n_coeff));
    for (index_t t = -burn; t < num_steps; ++t) {
      const std::vector<double> innovation = linalg::sample_mvn(factor_, rng);
      for (index_t c = 0; c < n_coeff; ++c) {
        double v = innovation[static_cast<std::size_t>(c)];
        const auto& phi = ar_[static_cast<std::size_t>(c)].phi;
        for (index_t a = 0; a < P; ++a) {
          v += phi[static_cast<std::size_t>(a)]
               * history[static_cast<std::size_t>(a)][static_cast<std::size_t>(c)];
        }
        current[static_cast<std::size_t>(c)] = v;
      }
      // Shift history (oldest last).
      for (index_t a = P - 1; a >= 1; --a) {
        history[static_cast<std::size_t>(a)] =
            history[static_cast<std::size_t>(a - 1)];
      }
      if (P >= 1) history[0] = current;
      if (t >= 0) {
        std::copy(current.begin(), current.end(),
                  coeff_series.data() + static_cast<std::size_t>(t) *
                                            static_cast<std::size_t>(n_coeff));
      }
    }

    // Per-step nugget seeds so synthesis can run in parallel.
    std::vector<std::uint64_t> nugget_seeds(static_cast<std::size_t>(num_steps));
    for (auto& s : nugget_seeds) s = rng.next_u64();

    common::parallel_for(
        0, num_steps,
        [&](index_t t) {
          std::vector<double> packed(
              coeff_series.row(t).begin(),
              coeff_series.row(t).end());
          const std::vector<cplx> coeffs = sht::unpack_real(L, packed);
          std::vector<double> field = plan_->synthesize(coeffs);
          common::Rng nug(nugget_seeds[static_cast<std::size_t>(t)]);
          auto dst = out.field(r, t);
          for (index_t p = 0; p < num_points; ++p) {
            double z = field[static_cast<std::size_t>(p)];
            z += std::sqrt(nugget_var_[static_cast<std::size_t>(p)]) *
                 nug.normal();
            const auto& tm = trend_[static_cast<std::size_t>(p)];
            dst[static_cast<std::size_t>(p)] =
                trend_series_per_point[static_cast<std::size_t>(p)]
                                      [static_cast<std::size_t>(t)] +
                tm.sigma * z;
          }
        },
        config_.threads == 0 ? common::default_thread_count()
                             : config_.threads);
  }
  return out;
}

void ClimateEmulator::restore(sht::GridShape grid,
                              std::vector<stats::TrendModel> trend,
                              std::vector<stats::ArModel> ar,
                              linalg::Matrix factor,
                              std::vector<double> nugget_var) {
  EXACLIM_CHECK(static_cast<index_t>(trend.size()) == grid.num_points(),
                "trend model count must match grid");
  EXACLIM_CHECK(static_cast<index_t>(ar.size()) ==
                    sh_coeff_count(config_.band_limit),
                "AR model count must match band limit");
  EXACLIM_CHECK(factor.rows() == sh_coeff_count(config_.band_limit) &&
                    factor.rows() == factor.cols(),
                "factor dimension must be L^2");
  EXACLIM_CHECK(static_cast<index_t>(nugget_var.size()) == grid.num_points(),
                "nugget variance count must match grid");
  grid_ = grid;
  trend_ = std::move(trend);
  ar_ = std::move(ar);
  factor_ = std::move(factor);
  nugget_var_ = std::move(nugget_var);
  plan_ = std::make_shared<const sht::SHTPlan>(config_.band_limit, grid_);
  trained_ = true;
}

}  // namespace exaclim::core
