#include "core/complexity.hpp"

#include "common/error.hpp"

namespace exaclim::core {

double axisymmetric_design_flops(index_t band_limit, double num_steps) {
  EXACLIM_CHECK(band_limit >= 1 && num_steps >= 1.0, "invalid cost inputs");
  const double l = static_cast<double>(band_limit);
  return l * l * l * num_steps + l * l * l * l;
}

double anisotropic_design_flops(index_t band_limit, double num_steps) {
  EXACLIM_CHECK(band_limit >= 1 && num_steps >= 1.0, "invalid cost inputs");
  const double l = static_cast<double>(band_limit);
  const double l2 = l * l;
  return l2 * l2 * num_steps + l2 * l2 * l2;
}

double resolution_factor(index_t band_limit_new, index_t steps_per_year_new,
                         index_t band_limit_old, index_t steps_per_year_old) {
  EXACLIM_CHECK(band_limit_new >= 1 && band_limit_old >= 1 &&
                    steps_per_year_new >= 1 && steps_per_year_old >= 1,
                "invalid resolution inputs");
  return (static_cast<double>(band_limit_new) /
          static_cast<double>(band_limit_old)) *
         (static_cast<double>(steps_per_year_new) /
          static_cast<double>(steps_per_year_old));
}

double paper_headline_factor() {
  // 28x spatial (3.5 km vs ~100 km) times 8760x temporal (hourly vs annual).
  return 28.0 * 8760.0;
}

}  // namespace exaclim::core
