// Emulator-design cost model (Figure 1).
//
// The paper positions emulators on a (spatial resolution, temporal
// resolution) plane by the flop cost of their design:
//   axially symmetric models:        O(L^3 T + L^4)
//   longitudinally anisotropic:      O(L^4 T + L^6)
// This work is an anisotropic design made feasible at hourly/3.5 km scales
// by HPC (the green star). These helpers evaluate the cost expressions and
// the headline 245,280x resolution factor.
#pragma once

#include "common/types.hpp"

namespace exaclim::core {

/// Design cost (flops) of an axially symmetric emulator.
double axisymmetric_design_flops(index_t band_limit, double num_steps);

/// Design cost (flops) of a longitudinally anisotropic emulator (this work's
/// model class): SHT O(L^3 T) + covariance O(L^4 T) + Cholesky O(L^6).
double anisotropic_design_flops(index_t band_limit, double num_steps);

/// Spatio-temporal resolution advance factor between two emulators:
/// (L_new / L_old) * (steps_per_year_new / steps_per_year_old).
double resolution_factor(index_t band_limit_new, index_t steps_per_year_new,
                         index_t band_limit_old, index_t steps_per_year_old);

/// The paper's headline comparison: L 5219 hourly vs L 186 (~100 km) annual
/// -> 28 x 8760 = 245,280. Provided as a named constant for tests and
/// benches.
double paper_headline_factor();

}  // namespace exaclim::core
