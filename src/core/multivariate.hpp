// Multi-variate climate emulator — the paper's stated next step.
//
// Section VI: "we aim to drive the development of robust and multi-variate
// emulators for generating high-resolution spatio-temporal data". This
// module implements that extension on top of the univariate machinery:
// each variable keeps its own mean trend, scale, SHT and nugget, but the
// packed coefficient vectors of all variables are stacked into one state
// f_t in R^{V * L^2} whose innovation covariance U-hat is estimated and
// factorized *jointly* — so cross-variable dependence (e.g. temperature vs
// pressure anomalies sharing weather systems) survives into the emulations,
// which a collection of independent univariate emulators would destroy.
//
// The Cholesky grows from (L^2)^3/3 to (V L^2)^3/3 flops — the same O(L^6)
// class with a V^3 constant, which is exactly the workload the paper's
// mixed-precision exascale solver exists to absorb.
#pragma once

#include <vector>

#include "climate/dataset.hpp"
#include "core/config.hpp"
#include "linalg/cholesky.hpp"
#include "sht/sht.hpp"
#include "stats/ar.hpp"
#include "stats/trend.hpp"

namespace exaclim::core {

/// Training diagnostics per joint run.
struct MultiVarTrainReport {
  double total_seconds = 0.0;
  double covariance_jitter = 0.0;
  bool covariance_deficient = false;
  index_t joint_dimension = 0;  ///< V * L^2
  index_t innovation_samples = 0;

  // Input-screening outcomes, summed over variables.
  index_t validation_flagged = 0;
  index_t validation_quarantined = 0;
};

/// Jointly trained emulator over several co-located variables.
class MultiVariateEmulator {
 public:
  explicit MultiVariateEmulator(EmulatorConfig config);

  /// Trains on V datasets sharing grid, step count, ensemble count and
  /// temporal resolution.
  MultiVarTrainReport train(
      const std::vector<const climate::ClimateDataset*>& variables,
      std::span<const double> annual_forcing);

  bool is_trained() const { return trained_; }
  index_t num_variables() const { return num_variables_; }

  /// Emulates all variables jointly; result[v] is variable v's ensemble.
  std::vector<climate::ClimateDataset> emulate(
      index_t num_steps, index_t num_ensembles,
      std::span<const double> annual_forcing, std::uint64_t seed) const;

  /// Empirical cross-variable innovation correlation between the packed
  /// coefficient blocks of variables a and b (mean absolute off-block
  /// correlation) — the quantity a univariate product model forces to zero.
  double innovation_cross_correlation(index_t a, index_t b) const;

  const linalg::Matrix& cholesky_factor() const { return factor_; }

 private:
  EmulatorConfig config_;
  bool trained_ = false;
  index_t num_variables_ = 0;
  sht::GridShape grid_{};
  std::vector<std::vector<stats::TrendModel>> trend_;   // [var][point]
  std::vector<std::vector<double>> nugget_var_;         // [var][point]
  std::vector<stats::ArModel> ar_;                      // V * L^2 models
  linalg::Matrix factor_;                               // joint V
  linalg::Matrix innovation_corr_;                      // joint correlation
  std::shared_ptr<const sht::SHTPlan> plan_;
};

}  // namespace exaclim::core
