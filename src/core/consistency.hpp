// Statistical-consistency evaluation between simulations and emulations
// (the scientific acceptance criterion behind Figures 2 and 4).
#pragma once

#include "climate/dataset.hpp"
#include "stats/diagnostics.hpp"

namespace exaclim::core {

struct ConsistencyReport {
  /// Pooled value distributions (all points, steps, ensembles).
  stats::MomentComparison pooled;
  /// RMSE between time-mean fields, relative to the simulation's spatial SD.
  double mean_field_rel_rmse = 0.0;
  /// RMSE between per-point temporal SD fields, relative to mean SD.
  double sd_field_rel_rmse = 0.0;
  /// Mean absolute difference of lag-1..5 autocorrelations at probe points.
  double acf_mad = 0.0;
  /// Mean absolute log10 ratio of spherical power spectra (degree 1..L-1).
  double spectrum_log10_mad = 0.0;

  /// A single pass/fail style score: all four structural metrics small.
  bool consistent(double tol = 0.35) const {
    return mean_field_rel_rmse < tol && sd_field_rel_rmse < tol &&
           acf_mad < tol && spectrum_log10_mad < tol;
  }
};

/// Compares two datasets on the same grid. `band_limit` controls the
/// spectrum comparison (use the emulator's L).
ConsistencyReport evaluate_consistency(const climate::ClimateDataset& sim,
                                       const climate::ClimateDataset& emu,
                                       index_t band_limit);

}  // namespace exaclim::core
