// Binary serialization of trained emulators.
//
// This *is* the storage-savings mechanism: a saved model file replaces the
// raw multi-petabyte archive, because any number of statistically consistent
// ensemble members can be regenerated from it. The dominant term is the
// L^2 x L^2 Cholesky factor V, so the file format supports storing V in
// reduced precision — the storage-side mirror of the solver's tile
// precision policies (fp16 rows are scaled per row so the wide dynamic
// range of the factor survives the 5-bit exponent).
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/framing.hpp"
#include "core/emulator.hpp"
#include "linalg/kernels.hpp"

namespace exaclim::core {

/// Storage precision of the Cholesky factor V inside a model file.
enum class FactorStorage : std::uint8_t {
  FP64 = 0,        ///< lossless (8 B/element)
  FP32 = 1,        ///< ~1e-7 relative loss (4 B/element)
  FP16Scaled = 2,  ///< per-row scaled binary16 (2 B/element + 4 B/row)
};

/// Writes the trained model (throws InvalidArgument if untrained). Only the
/// lower triangle of V is stored.
void save_emulator(const ClimateEmulator& emulator, const std::string& path,
                   FactorStorage factor_storage = FactorStorage::FP64);

/// Reads a model written by save_emulator (any factor storage).
ClimateEmulator load_emulator(const std::string& path);

/// A trained model opened read-only via mmap, for serving.
///
/// Construction maps the file and validates only the frame structure plus
/// the (tiny) header section; every other section's CRC32C is checked
/// lazily, on first touch, by the underlying MappedFramedFile — so opening
/// a model whose factor section is gigabytes costs O(1) reads, and a
/// flipped bit in the factor payload surfaces as an IoError naming the
/// byte offset the first time a sampler touches it (and every time after).
///
/// All accessors are safe to call from any number of threads concurrently;
/// the factor view aliases the mapping with zero copies, so one FrozenModel
/// serves every worker in the process. The fp32 degraded plane (the
/// degradation ladder's reduced-precision rung) is materialized at most
/// once, on first request, behind a once-guard.
class FrozenModel {
 public:
  explicit FrozenModel(const std::string& path);

  index_t band_limit() const { return band_limit_; }
  index_t ar_order() const { return ar_order_; }
  index_t harmonics() const { return harmonics_; }
  index_t steps_per_year() const { return steps_per_year_; }
  const sht::GridShape& grid() const { return grid_; }
  FactorStorage factor_storage() const { return storage_; }
  /// Dimension n of the n x n Cholesky factor (= band_limit^2).
  index_t factor_dim() const { return factor_dim_; }
  const std::string& path() const { return file_.path(); }

  /// Zero-copy view of the packed factor in its native storage precision.
  /// First call CRC-validates the factor section (IoError with byte offset
  /// on corruption) and checks its size against the header dimensions.
  linalg::PackedFactorView factor() const;

  /// Factor view for the degradation ladder's reduced-precision rung: the
  /// native view when the model is already stored narrow (fp32/fp16), else
  /// a shared packed-fp32 copy materialized from the fp64 payload on first
  /// call. Thread-safe; the copy is built exactly once.
  linalg::PackedFactorView degraded_factor() const;

  /// True once degraded_factor() has materialized an fp32 copy (always
  /// false for models stored fp32/fp16, whose degraded view is the native
  /// mapping).
  bool degraded_plane_materialized() const;

  /// Trend/AR/nugget state, parsed (and CRC-validated) on first call.
  const std::vector<stats::TrendModel>& trend_models() const;
  const std::vector<stats::ArModel>& ar_models() const;
  const std::vector<double>& nugget_variance() const;

 private:
  common::MappedFramedFile file_;
  index_t band_limit_ = 0;
  index_t ar_order_ = 0;
  index_t harmonics_ = 0;
  index_t steps_per_year_ = 0;
  sht::GridShape grid_{};
  FactorStorage storage_ = FactorStorage::FP64;
  index_t factor_dim_ = 0;

  // Lazy members use mutex + acquire/release ready flags, not
  // std::call_once: the initializers can throw (corrupt sections), and a
  // throwing call_once callable deadlocks later callers under TSan's
  // pthread_once interceptor. The flag is the fast path; the mutex
  // serializes (and allows retrying) the one-time build.
  mutable std::mutex lazy_mu_;
  mutable std::vector<unsigned char> degraded_;  ///< packed fp32 copy
  mutable std::atomic<bool> degraded_built_{false};
  mutable std::vector<stats::TrendModel> trend_;
  mutable std::atomic<bool> trend_ready_{false};
  mutable std::vector<stats::ArModel> ar_;
  mutable std::atomic<bool> ar_ready_{false};
  mutable std::vector<double> nugget_;
  mutable std::atomic<bool> nugget_ready_{false};
};

}  // namespace exaclim::core
