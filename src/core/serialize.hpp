// Binary serialization of trained emulators.
//
// This *is* the storage-savings mechanism: a saved model file replaces the
// raw multi-petabyte archive, because any number of statistically consistent
// ensemble members can be regenerated from it. The dominant term is the
// L^2 x L^2 Cholesky factor V, so the file format supports storing V in
// reduced precision — the storage-side mirror of the solver's tile
// precision policies (fp16 rows are scaled per row so the wide dynamic
// range of the factor survives the 5-bit exponent).
#pragma once

#include <string>

#include "core/emulator.hpp"

namespace exaclim::core {

/// Storage precision of the Cholesky factor V inside a model file.
enum class FactorStorage : std::uint8_t {
  FP64 = 0,        ///< lossless (8 B/element)
  FP32 = 1,        ///< ~1e-7 relative loss (4 B/element)
  FP16Scaled = 2,  ///< per-row scaled binary16 (2 B/element + 4 B/row)
};

/// Writes the trained model (throws InvalidArgument if untrained). Only the
/// lower triangle of V is stored.
void save_emulator(const ClimateEmulator& emulator, const std::string& path,
                   FactorStorage factor_storage = FactorStorage::FP64);

/// Reads a model written by save_emulator (any factor storage).
ClimateEmulator load_emulator(const std::string& path);

}  // namespace exaclim::core
