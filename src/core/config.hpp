// Emulator configuration.
#pragma once

#include <limits>
#include <string>

#include "common/io.hpp"
#include "linalg/precision_policy.hpp"
#include "runtime/verify_mode.hpp"
#include "stats/trend.hpp"

namespace exaclim::core {

struct EmulatorConfig {
  index_t band_limit = 16;      ///< L: spherical-harmonic truncation degree
  index_t ar_order = 3;         ///< P (paper uses 3)
  index_t harmonics = 5;        ///< K periodic terms in the trend (paper: 5)
  index_t steps_per_year = 64;  ///< tau (8760 hourly, 365 daily, 12 monthly)

  /// Precision variant for the Cholesky of the innovation covariance.
  linalg::PrecisionVariant cholesky_variant = linalg::PrecisionVariant::DP;
  index_t tile_size = 128;           ///< nb for the tiled solver
  bool use_parallel_runtime = true;  ///< factor U via the task runtime
  unsigned threads = 0;              ///< 0 = hardware concurrency

  double jitter_base = 1e-10;  ///< diagonal perturbation scale (Eq. 9 repair)

  /// Input screening (climate::validate_dataset) before training. NaN/Inf
  /// and constant-field checks are always part of it; the range screen only
  /// engages when valid_min/valid_max are set to finite bounds.
  bool validate_input = true;
  /// Impute flagged cells (field-mean of valid cells) instead of failing.
  bool quarantine = false;
  double valid_min = -std::numeric_limits<double>::infinity();
  double valid_max = std::numeric_limits<double>::infinity();

  /// Task-level fault tolerance for the tiled Cholesky: retry with precision
  /// escalation and per-tile jitter instead of aborting on the first
  /// NumericalError.
  bool fault_tolerance = false;
  std::string checkpoint_path;   ///< empty = no checkpointing
  index_t checkpoint_every = 0;  ///< kernel tasks per checkpoint round; 0 =
                                 ///< one final checkpoint only
  std::string resume_path;       ///< empty = start fresh
  /// Checkpoint durability (--checkpoint-sync full|data|none).
  common::SyncPolicy checkpoint_sync = common::SyncPolicy::Full;

  /// Scheduler stall watchdog (--stall-timeout): > 0 dumps per-worker state
  /// after this many seconds without a completed task and fails the run with
  /// a structured StallError once the grace period (default: same value)
  /// also lapses. 0 disables.
  double stall_timeout_seconds = 0.0;
  double stall_grace_seconds = 0.0;

  /// DAG verification gate (--verify off|static|dynamic): static proves the
  /// constructed task graph race-free before execution, dynamic additionally
  /// shadow-checks the executed schedule. Default resolves through
  /// EXACLIM_VERIFY, falling back to static.
  runtime::VerifyMode verify_mode = runtime::VerifyMode::Default;

  /// Profile grid for the trend's rho; empty = default {0, .05, ..., .95}.
  std::vector<double> rho_grid;

  /// Burn-in steps discarded when simulating the VAR forward.
  index_t emulation_burn_in = 64;

  stats::TrendFitConfig trend_config() const {
    stats::TrendFitConfig c;
    c.harmonics = harmonics;
    c.period = steps_per_year;
    c.rho_grid = rho_grid;
    return c;
  }
};

}  // namespace exaclim::core
