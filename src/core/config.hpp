// Emulator configuration.
#pragma once

#include <string>

#include "linalg/precision_policy.hpp"
#include "stats/trend.hpp"

namespace exaclim::core {

struct EmulatorConfig {
  index_t band_limit = 16;      ///< L: spherical-harmonic truncation degree
  index_t ar_order = 3;         ///< P (paper uses 3)
  index_t harmonics = 5;        ///< K periodic terms in the trend (paper: 5)
  index_t steps_per_year = 64;  ///< tau (8760 hourly, 365 daily, 12 monthly)

  /// Precision variant for the Cholesky of the innovation covariance.
  linalg::PrecisionVariant cholesky_variant = linalg::PrecisionVariant::DP;
  index_t tile_size = 128;           ///< nb for the tiled solver
  bool use_parallel_runtime = true;  ///< factor U via the task runtime
  unsigned threads = 0;              ///< 0 = hardware concurrency

  double jitter_base = 1e-10;  ///< diagonal perturbation scale (Eq. 9 repair)

  /// Task-level fault tolerance for the tiled Cholesky: retry with precision
  /// escalation and per-tile jitter instead of aborting on the first
  /// NumericalError.
  bool fault_tolerance = false;
  std::string checkpoint_path;   ///< empty = no checkpointing
  index_t checkpoint_every = 0;  ///< kernel tasks per checkpoint round; 0 =
                                 ///< one final checkpoint only
  std::string resume_path;       ///< empty = start fresh

  /// Profile grid for the trend's rho; empty = default {0, .05, ..., .95}.
  std::vector<double> rho_grid;

  /// Burn-in steps discarded when simulating the VAR forward.
  index_t emulation_burn_in = 64;

  stats::TrendFitConfig trend_config() const {
    stats::TrendFitConfig c;
    c.harmonics = harmonics;
    c.period = steps_per_year;
    c.rho_grid = rho_grid;
    return c;
  }
};

}  // namespace exaclim::core
