#include "core/serialize.hpp"

#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "common/framing.hpp"
#include "common/half.hpp"

namespace exaclim::core {

namespace {

// Format v4: framed container (common/framing.hpp) — 8-byte magic, u64
// total-length header, and per-section CRC32C — written atomically. Older
// EXACMDL3 files (raw concatenated streams, no checksums) are rejected by the
// frame reader with a clean unsupported-version error.
constexpr char kMagic[] = "EXACMDL4";
constexpr const char* kWhat = "emulator model";

constexpr std::uint32_t kSectionHeader = 1;
constexpr std::uint32_t kSectionTrend = 2;
constexpr std::uint32_t kSectionAr = 3;
constexpr std::uint32_t kSectionFactor = 4;
constexpr std::uint32_t kSectionNugget = 5;

struct Header {
  index_t band_limit = 0;
  index_t ar_order = 0;
  index_t harmonics = 0;
  index_t steps_per_year = 0;
  index_t nlat = 0;
  index_t nlon = 0;
  std::uint8_t factor_storage = 0;
  std::uint8_t pad[7] = {};  // explicit padding: artifact bytes deterministic
};

void write_factor(common::ByteWriter& out, const linalg::Matrix& v,
                  FactorStorage storage) {
  const index_t n = v.rows();
  switch (storage) {
    case FactorStorage::FP64: {
      std::vector<double> row;
      for (index_t i = 0; i < n; ++i) {
        row.assign(v.row(i).begin(), v.row(i).begin() + i + 1);
        out.raw(row.data(), row.size() * sizeof(double));
      }
      break;
    }
    case FactorStorage::FP32: {
      std::vector<float> row;
      for (index_t i = 0; i < n; ++i) {
        row.resize(static_cast<std::size_t>(i + 1));
        for (index_t j = 0; j <= i; ++j) row[static_cast<std::size_t>(j)] =
            static_cast<float>(v(i, j));
        out.raw(row.data(), row.size() * sizeof(float));
      }
      break;
    }
    case FactorStorage::FP16Scaled: {
      // Per-row scaling keeps each row inside the binary16 range regardless
      // of the factor's dynamic range.
      std::vector<std::uint16_t> row;
      for (index_t i = 0; i < n; ++i) {
        double max_abs = 0.0;
        for (index_t j = 0; j <= i; ++j) {
          max_abs = std::max(max_abs, std::abs(v(i, j)));
        }
        const float scale =
            max_abs > 0.0 ? static_cast<float>(max_abs / 32768.0) : 1.0f;
        out.pod(scale);
        row.resize(static_cast<std::size_t>(i + 1));
        for (index_t j = 0; j <= i; ++j) {
          row[static_cast<std::size_t>(j)] = common::float_to_half_bits(
              static_cast<float>(v(i, j)) / scale);
        }
        out.raw(row.data(), row.size() * sizeof(std::uint16_t));
      }
      break;
    }
  }
}

linalg::Matrix read_factor(common::ByteReader& in, index_t n,
                           FactorStorage storage) {
  linalg::Matrix v(n, n);
  switch (storage) {
    case FactorStorage::FP64: {
      std::vector<double> row;
      for (index_t i = 0; i < n; ++i) {
        row.resize(static_cast<std::size_t>(i + 1));
        in.raw(row.data(), row.size() * sizeof(double));
        for (index_t j = 0; j <= i; ++j) v(i, j) = row[static_cast<std::size_t>(j)];
      }
      break;
    }
    case FactorStorage::FP32: {
      std::vector<float> row;
      for (index_t i = 0; i < n; ++i) {
        row.resize(static_cast<std::size_t>(i + 1));
        in.raw(row.data(), row.size() * sizeof(float));
        for (index_t j = 0; j <= i; ++j) v(i, j) = row[static_cast<std::size_t>(j)];
      }
      break;
    }
    case FactorStorage::FP16Scaled: {
      std::vector<std::uint16_t> row;
      for (index_t i = 0; i < n; ++i) {
        const auto scale = in.pod<float>();
        row.resize(static_cast<std::size_t>(i + 1));
        in.raw(row.data(), row.size() * sizeof(std::uint16_t));
        for (index_t j = 0; j <= i; ++j) {
          v(i, j) = static_cast<double>(
              common::half_bits_to_float(row[static_cast<std::size_t>(j)]) *
              scale);
        }
      }
      break;
    }
  }
  return v;
}

/// Validates a parsed header and returns the factor storage tag it names.
FactorStorage check_header(const Header& header) {
  EXACLIM_CHECK(header.band_limit > 0 && header.ar_order > 0 &&
                    header.harmonics >= 0 && header.steps_per_year > 0 &&
                    header.nlat > 0 && header.nlon > 0,
                "corrupt model file: implausible header dimensions");
  if (header.factor_storage > 2) {
    throw IoError("corrupt model file: bad factor storage tag " +
                  std::to_string(header.factor_storage));
  }
  return static_cast<FactorStorage>(header.factor_storage);
}

linalg::PackedStorage to_packed(FactorStorage storage) {
  switch (storage) {
    case FactorStorage::FP64: return linalg::PackedStorage::F64;
    case FactorStorage::FP32: return linalg::PackedStorage::F32;
    case FactorStorage::FP16Scaled: return linalg::PackedStorage::F16Scaled;
  }
  return linalg::PackedStorage::F64;
}

}  // namespace

void save_emulator(const ClimateEmulator& emulator, const std::string& path,
                   FactorStorage factor_storage) {
  EXACLIM_CHECK(emulator.is_trained(), "cannot save an untrained emulator");
  common::FramedWriter writer(kMagic);

  const EmulatorConfig& cfg = emulator.config();
  common::ByteWriter header;
  header.pod(Header{cfg.band_limit, cfg.ar_order, cfg.harmonics,
                    cfg.steps_per_year, emulator.grid().nlat,
                    emulator.grid().nlon,
                    static_cast<std::uint8_t>(factor_storage)});
  writer.add_section(kSectionHeader, header);

  common::ByteWriter trend;
  for (const auto& tm : emulator.trend_models()) {
    const double scalars[5] = {tm.beta0, tm.beta1, tm.beta2, tm.rho, tm.sigma};
    trend.raw(scalars, sizeof(scalars));
    trend.vec64(tm.cos_coeff);
    trend.vec64(tm.sin_coeff);
  }
  writer.add_section(kSectionTrend, trend);

  common::ByteWriter ar;
  for (const auto& am : emulator.ar_models()) {
    ar.vec64(am.phi);
    ar.pod(am.innovation_variance);
  }
  writer.add_section(kSectionAr, ar);

  common::ByteWriter factor;
  write_factor(factor, emulator.cholesky_factor(), factor_storage);
  writer.add_section(kSectionFactor, factor);

  common::ByteWriter nugget;
  nugget.vec64(emulator.nugget_variance());
  writer.add_section(kSectionNugget, nugget);

  writer.commit(path);
}

ClimateEmulator load_emulator(const std::string& path) {
  const common::FramedFile file(path, kMagic, kWhat);

  common::ByteReader hr = file.section(kSectionHeader);
  const auto header = hr.pod<Header>();
  const FactorStorage storage = check_header(header);

  EmulatorConfig cfg;
  cfg.band_limit = header.band_limit;
  cfg.ar_order = header.ar_order;
  cfg.harmonics = header.harmonics;
  cfg.steps_per_year = header.steps_per_year;
  const sht::GridShape grid{header.nlat, header.nlon};

  ClimateEmulator emulator(cfg);

  common::ByteReader tr = file.section(kSectionTrend);
  std::vector<stats::TrendModel> trend(
      static_cast<std::size_t>(grid.num_points()));
  for (auto& tm : trend) {
    double scalars[5];
    tr.raw(scalars, sizeof(scalars));
    tm.beta0 = scalars[0];
    tm.beta1 = scalars[1];
    tm.beta2 = scalars[2];
    tm.rho = scalars[3];
    tm.sigma = scalars[4];
    tm.cos_coeff = tr.vec64<double>();
    tm.sin_coeff = tr.vec64<double>();
    tm.period = cfg.steps_per_year;
  }
  if (!tr.at_end()) {
    throw IoError("corrupt model file: trend section has trailing bytes (at "
                  "byte offset " +
                  std::to_string(tr.offset()) + ")");
  }

  common::ByteReader ar_reader = file.section(kSectionAr);
  std::vector<stats::ArModel> ar(
      static_cast<std::size_t>(sh_coeff_count(cfg.band_limit)));
  for (auto& am : ar) {
    am.phi = ar_reader.vec64<double>();
    am.innovation_variance = ar_reader.pod<double>();
  }
  if (!ar_reader.at_end()) {
    throw IoError("corrupt model file: AR section has trailing bytes (at "
                  "byte offset " +
                  std::to_string(ar_reader.offset()) + ")");
  }

  common::ByteReader fr = file.section(kSectionFactor);
  linalg::Matrix factor =
      read_factor(fr, sh_coeff_count(cfg.band_limit), storage);
  if (!fr.at_end()) {
    throw IoError("corrupt model file: factor section has trailing bytes (at "
                  "byte offset " +
                  std::to_string(fr.offset()) + ")");
  }

  common::ByteReader nr = file.section(kSectionNugget);
  std::vector<double> nugget = nr.vec64<double>();

  emulator.restore(grid, std::move(trend), std::move(ar), std::move(factor),
                   std::move(nugget));
  return emulator;
}

FrozenModel::FrozenModel(const std::string& path)
    : file_(path, kMagic, kWhat) {
  // The header is the only section touched at open: a few dozen bytes whose
  // CRC check is effectively free, and everything else a caller might do
  // needs these dimensions anyway.
  common::ByteReader hr = file_.section(kSectionHeader);
  const auto header = hr.pod<Header>();
  storage_ = check_header(header);
  band_limit_ = header.band_limit;
  ar_order_ = header.ar_order;
  harmonics_ = header.harmonics;
  steps_per_year_ = header.steps_per_year;
  grid_ = sht::GridShape{header.nlat, header.nlon};
  factor_dim_ = sh_coeff_count(band_limit_);
}

linalg::PackedFactorView FrozenModel::factor() const {
  // The section_size call CRC-validates the payload on first touch
  // (throwing IoError with the byte offset on a flipped bit; the verdict is
  // cached inside MappedFramedFile so corruption fails every touch), then
  // the size is cross-checked against the header dimensions — cheap enough
  // to repeat, so no once-state of its own.
  const std::size_t expect =
      linalg::packed_factor_bytes(to_packed(storage_), factor_dim_);
  const std::size_t actual = file_.section_size(kSectionFactor);
  if (actual != expect) {
    throw IoError("corrupt emulator model: factor section holds " +
                  std::to_string(actual) + " bytes but the header implies " +
                  std::to_string(expect) + " (at byte offset " +
                  std::to_string(file_.section_offset(kSectionFactor)) + ")");
  }
  linalg::PackedFactorView view;
  view.bytes = file_.section_data(kSectionFactor);
  view.size_bytes = actual;
  view.n = factor_dim_;
  view.storage = to_packed(storage_);
  return view;
}

linalg::PackedFactorView FrozenModel::degraded_factor() const {
  if (storage_ != FactorStorage::FP64) {
    // Already narrow on disk: the reduced-precision rung is the native
    // mapping itself, still zero copies.
    return factor();
  }
  const linalg::PackedFactorView native = factor();
  if (!degraded_built_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(lazy_mu_);
    if (!degraded_built_.load(std::memory_order_acquire)) {
      const std::size_t count =
          static_cast<std::size_t>(factor_dim_) *
          static_cast<std::size_t>(factor_dim_ + 1) / 2;
      std::vector<unsigned char> copy(count * sizeof(float));
      const auto* src = reinterpret_cast<const double*>(native.bytes);
      auto* dst = reinterpret_cast<float*>(copy.data());
      for (std::size_t i = 0; i < count; ++i) {
        dst[i] = static_cast<float>(src[i]);
      }
      degraded_ = std::move(copy);
      degraded_built_.store(true, std::memory_order_release);
    }
  }
  linalg::PackedFactorView view;
  view.bytes = degraded_.data();
  view.size_bytes = degraded_.size();
  view.n = factor_dim_;
  view.storage = linalg::PackedStorage::F32;
  return view;
}

bool FrozenModel::degraded_plane_materialized() const {
  return degraded_built_.load(std::memory_order_acquire);
}

const std::vector<stats::TrendModel>& FrozenModel::trend_models() const {
  if (!trend_ready_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(lazy_mu_);
    if (!trend_ready_.load(std::memory_order_acquire)) {
      common::ByteReader tr = file_.section(kSectionTrend);
      std::vector<stats::TrendModel> trend(
          static_cast<std::size_t>(grid_.num_points()));
      for (auto& tm : trend) {
        double scalars[5];
        tr.raw(scalars, sizeof(scalars));
        tm.beta0 = scalars[0];
        tm.beta1 = scalars[1];
        tm.beta2 = scalars[2];
        tm.rho = scalars[3];
        tm.sigma = scalars[4];
        tm.cos_coeff = tr.vec64<double>();
        tm.sin_coeff = tr.vec64<double>();
        tm.period = steps_per_year_;
      }
      trend_ = std::move(trend);
      trend_ready_.store(true, std::memory_order_release);
    }
  }
  return trend_;
}

const std::vector<stats::ArModel>& FrozenModel::ar_models() const {
  if (!ar_ready_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(lazy_mu_);
    if (!ar_ready_.load(std::memory_order_acquire)) {
      common::ByteReader ar_reader = file_.section(kSectionAr);
      std::vector<stats::ArModel> ar(static_cast<std::size_t>(factor_dim_));
      for (auto& am : ar) {
        am.phi = ar_reader.vec64<double>();
        am.innovation_variance = ar_reader.pod<double>();
      }
      ar_ = std::move(ar);
      ar_ready_.store(true, std::memory_order_release);
    }
  }
  return ar_;
}

const std::vector<double>& FrozenModel::nugget_variance() const {
  if (!nugget_ready_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(lazy_mu_);
    if (!nugget_ready_.load(std::memory_order_acquire)) {
      common::ByteReader nr = file_.section(kSectionNugget);
      nugget_ = nr.vec64<double>();
      nugget_ready_.store(true, std::memory_order_release);
    }
  }
  return nugget_;
}

}  // namespace exaclim::core
