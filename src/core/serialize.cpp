#include "core/serialize.hpp"

#include <cmath>
#include <cstring>
#include <fstream>

#include "common/error.hpp"
#include "common/half.hpp"

namespace exaclim::core {

namespace {

constexpr char kMagic[8] = {'E', 'X', 'A', 'C', 'M', 'D', 'L', '3'};

void write_raw(std::ofstream& out, const void* data, std::size_t bytes) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
}

void read_raw(std::ifstream& in, void* data, std::size_t bytes) {
  in.read(reinterpret_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (!in) throw IoError("truncated emulator model file");
}

void write_vec(std::ofstream& out, const std::vector<double>& v) {
  const index_t n = static_cast<index_t>(v.size());
  write_raw(out, &n, sizeof(n));
  write_raw(out, v.data(), v.size() * sizeof(double));
}

std::vector<double> read_vec(std::ifstream& in) {
  index_t n = 0;
  read_raw(in, &n, sizeof(n));
  EXACLIM_CHECK(n >= 0, "corrupt model file: negative vector length");
  std::vector<double> v(static_cast<std::size_t>(n));
  read_raw(in, v.data(), v.size() * sizeof(double));
  return v;
}

void write_factor(std::ofstream& out, const linalg::Matrix& v,
                  FactorStorage storage) {
  const index_t n = v.rows();
  switch (storage) {
    case FactorStorage::FP64: {
      std::vector<double> row;
      for (index_t i = 0; i < n; ++i) {
        row.assign(v.row(i).begin(), v.row(i).begin() + i + 1);
        write_raw(out, row.data(), row.size() * sizeof(double));
      }
      break;
    }
    case FactorStorage::FP32: {
      std::vector<float> row;
      for (index_t i = 0; i < n; ++i) {
        row.resize(static_cast<std::size_t>(i + 1));
        for (index_t j = 0; j <= i; ++j) row[static_cast<std::size_t>(j)] =
            static_cast<float>(v(i, j));
        write_raw(out, row.data(), row.size() * sizeof(float));
      }
      break;
    }
    case FactorStorage::FP16Scaled: {
      // Per-row scaling keeps each row inside the binary16 range regardless
      // of the factor's dynamic range.
      std::vector<std::uint16_t> row;
      for (index_t i = 0; i < n; ++i) {
        double max_abs = 0.0;
        for (index_t j = 0; j <= i; ++j) {
          max_abs = std::max(max_abs, std::abs(v(i, j)));
        }
        const float scale =
            max_abs > 0.0 ? static_cast<float>(max_abs / 32768.0) : 1.0f;
        write_raw(out, &scale, sizeof(scale));
        row.resize(static_cast<std::size_t>(i + 1));
        for (index_t j = 0; j <= i; ++j) {
          row[static_cast<std::size_t>(j)] = common::float_to_half_bits(
              static_cast<float>(v(i, j)) / scale);
        }
        write_raw(out, row.data(), row.size() * sizeof(std::uint16_t));
      }
      break;
    }
  }
}

linalg::Matrix read_factor(std::ifstream& in, index_t n,
                           FactorStorage storage) {
  linalg::Matrix v(n, n);
  switch (storage) {
    case FactorStorage::FP64: {
      std::vector<double> row;
      for (index_t i = 0; i < n; ++i) {
        row.resize(static_cast<std::size_t>(i + 1));
        read_raw(in, row.data(), row.size() * sizeof(double));
        for (index_t j = 0; j <= i; ++j) v(i, j) = row[static_cast<std::size_t>(j)];
      }
      break;
    }
    case FactorStorage::FP32: {
      std::vector<float> row;
      for (index_t i = 0; i < n; ++i) {
        row.resize(static_cast<std::size_t>(i + 1));
        read_raw(in, row.data(), row.size() * sizeof(float));
        for (index_t j = 0; j <= i; ++j) v(i, j) = row[static_cast<std::size_t>(j)];
      }
      break;
    }
    case FactorStorage::FP16Scaled: {
      std::vector<std::uint16_t> row;
      for (index_t i = 0; i < n; ++i) {
        float scale = 1.0f;
        read_raw(in, &scale, sizeof(scale));
        row.resize(static_cast<std::size_t>(i + 1));
        read_raw(in, row.data(), row.size() * sizeof(std::uint16_t));
        for (index_t j = 0; j <= i; ++j) {
          v(i, j) = static_cast<double>(
              common::half_bits_to_float(row[static_cast<std::size_t>(j)]) *
              scale);
        }
      }
      break;
    }
  }
  return v;
}

}  // namespace

void save_emulator(const ClimateEmulator& emulator, const std::string& path,
                   FactorStorage factor_storage) {
  EXACLIM_CHECK(emulator.is_trained(), "cannot save an untrained emulator");
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open for writing: " + path);
  out.write(kMagic, sizeof(kMagic));

  const EmulatorConfig& cfg = emulator.config();
  const index_t header[6] = {cfg.band_limit,       cfg.ar_order,
                             cfg.harmonics,        cfg.steps_per_year,
                             emulator.grid().nlat, emulator.grid().nlon};
  write_raw(out, header, sizeof(header));
  const auto storage_byte = static_cast<std::uint8_t>(factor_storage);
  write_raw(out, &storage_byte, 1);

  for (const auto& tm : emulator.trend_models()) {
    const double scalars[5] = {tm.beta0, tm.beta1, tm.beta2, tm.rho, tm.sigma};
    write_raw(out, scalars, sizeof(scalars));
    write_vec(out, tm.cos_coeff);
    write_vec(out, tm.sin_coeff);
  }
  for (const auto& am : emulator.ar_models()) {
    write_vec(out, am.phi);
    write_raw(out, &am.innovation_variance, sizeof(double));
  }
  write_factor(out, emulator.cholesky_factor(), factor_storage);
  write_vec(out, emulator.nugget_variance());
  if (!out) throw IoError("write failed: " + path);
}

ClimateEmulator load_emulator(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open for reading: " + path);
  char magic[8];
  read_raw(in, magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw IoError("not an ExaClim model file: " + path);
  }
  index_t header[6];
  read_raw(in, header, sizeof(header));
  std::uint8_t storage_byte = 0;
  read_raw(in, &storage_byte, 1);
  EXACLIM_CHECK(storage_byte <= 2, "corrupt model file: bad factor storage");
  const auto storage = static_cast<FactorStorage>(storage_byte);

  EmulatorConfig cfg;
  cfg.band_limit = header[0];
  cfg.ar_order = header[1];
  cfg.harmonics = header[2];
  cfg.steps_per_year = header[3];
  const sht::GridShape grid{header[4], header[5]};

  ClimateEmulator emulator(cfg);
  std::vector<stats::TrendModel> trend(
      static_cast<std::size_t>(grid.num_points()));
  for (auto& tm : trend) {
    double scalars[5];
    read_raw(in, scalars, sizeof(scalars));
    tm.beta0 = scalars[0];
    tm.beta1 = scalars[1];
    tm.beta2 = scalars[2];
    tm.rho = scalars[3];
    tm.sigma = scalars[4];
    tm.cos_coeff = read_vec(in);
    tm.sin_coeff = read_vec(in);
    tm.period = cfg.steps_per_year;
  }
  std::vector<stats::ArModel> ar(
      static_cast<std::size_t>(sh_coeff_count(cfg.band_limit)));
  for (auto& am : ar) {
    am.phi = read_vec(in);
    read_raw(in, &am.innovation_variance, sizeof(double));
  }
  linalg::Matrix factor =
      read_factor(in, sh_coeff_count(cfg.band_limit), storage);
  std::vector<double> nugget = read_vec(in);

  emulator.restore(grid, std::move(trend), std::move(ar), std::move(factor),
                   std::move(nugget));
  return emulator;
}

}  // namespace exaclim::core
