#include "stats/covariance.hpp"

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "linalg/solve.hpp"

namespace exaclim::stats {

linalg::Matrix empirical_covariance(const linalg::Matrix& samples) {
  return empirical_covariance_parallel(samples, 1);
}

linalg::Matrix empirical_covariance_parallel(const linalg::Matrix& samples,
                                             unsigned threads) {
  const index_t n = samples.rows();
  const index_t d = samples.cols();
  EXACLIM_CHECK(n >= 1, "need at least one sample");
  linalg::Matrix u(d, d);
  const double inv_n = 1.0 / static_cast<double>(n);
  common::parallel_for(
      0, d,
      [&](index_t a) {
        for (index_t b = 0; b <= a; ++b) {
          double acc = 0.0;
          for (index_t r = 0; r < n; ++r) {
            acc += samples(r, a) * samples(r, b);
          }
          u(a, b) = acc * inv_n;
          u(b, a) = u(a, b);
        }
      },
      threads == 0 ? common::default_thread_count() : threads);
  return u;
}

PreparedCovariance prepare_covariance(const linalg::Matrix& samples,
                                      double jitter_base) {
  PreparedCovariance out;
  out.u = empirical_covariance_parallel(samples);
  out.was_deficient = samples.rows() < samples.cols();
  // Scale the jitter to the average diagonal so it is "minor" in the paper's
  // sense regardless of the data's units.
  double mean_diag = 0.0;
  for (index_t i = 0; i < out.u.rows(); ++i) mean_diag += out.u(i, i);
  mean_diag /= static_cast<double>(out.u.rows() > 0 ? out.u.rows() : 1);
  const double base = jitter_base * (mean_diag > 0.0 ? mean_diag : 1.0);
  if (out.was_deficient) {
    // Rank-deficient by construction: jitter unconditionally.
    linalg::add_diagonal_jitter(out.u, base);
    out.jitter = base;
  }
  out.jitter += linalg::ensure_positive_definite(out.u, base);
  return out;
}

}  // namespace exaclim::stats
