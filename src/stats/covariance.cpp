#include "stats/covariance.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "linalg/solve.hpp"

namespace exaclim::stats {

namespace {

// Location of the first (row-major) non-finite entry, or row = -1 if clean.
struct BadEntry {
  index_t row = -1;
  index_t col = -1;
  double value = 0.0;
};

// Deterministic scan of the full matrix for NaN/Inf: chunk-stable reduce
// over rows, keeping the lexicographically first offender so the error
// message is identical at any thread count.
BadEntry first_non_finite(const linalg::Matrix& m, unsigned threads) {
  return common::parallel_reduce(
      0, m.rows(), BadEntry{},
      [&](BadEntry& acc, index_t i) {
        if (acc.row >= 0) return;
        for (index_t j = 0; j < m.cols(); ++j) {
          if (!std::isfinite(m(i, j))) {
            acc = BadEntry{i, j, m(i, j)};
            return;
          }
        }
      },
      [](BadEntry& into, BadEntry&& from) {
        if (into.row < 0) into = from;
      },
      threads);
}

}  // namespace

linalg::Matrix empirical_covariance(const linalg::Matrix& samples) {
  return empirical_covariance_parallel(samples, 1);
}

linalg::Matrix empirical_covariance_parallel(const linalg::Matrix& samples,
                                             unsigned threads) {
  const index_t n = samples.rows();
  const index_t d = samples.cols();
  EXACLIM_CHECK(n >= 1, "need at least one sample");
  linalg::Matrix u(d, d);
  const double inv_n = 1.0 / static_cast<double>(n);
  common::parallel_for(
      0, d,
      [&](index_t a) {
        for (index_t b = 0; b <= a; ++b) {
          double acc = 0.0;
          for (index_t r = 0; r < n; ++r) {
            acc += samples(r, a) * samples(r, b);
          }
          u(a, b) = acc * inv_n;
          u(b, a) = u(a, b);
        }
      },
      threads == 0 ? common::default_thread_count() : threads);
  return u;
}

PreparedCovariance prepare_covariance(const linalg::Matrix& samples,
                                      double jitter_base) {
  PreparedCovariance out;
  out.u = empirical_covariance_parallel(samples);
  out.was_deficient = samples.rows() < samples.cols();

  // SPD pre-checks before any tile is built: fail here with coordinates, not
  // three levels down in a POTRF task.
  const BadEntry bad = first_non_finite(out.u, 0);
  if (bad.row >= 0) {
    std::ostringstream os;
    os << "empirical covariance has non-finite entry " << bad.value << " at ("
       << bad.row << ", " << bad.col
       << ") — input contains NaN/Inf or overflowed; validate the dataset";
    throw NumericalError(os.str());
  }
  struct DiagStats {
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    index_t min_at = -1;
  };
  const DiagStats diag = common::parallel_reduce(
      0, out.u.rows(), DiagStats{},
      [&](DiagStats& acc, index_t i) {
        const double v = out.u(i, i);
        if (v < acc.min) {
          acc.min = v;
          acc.min_at = i;
        }
        if (v > acc.max) acc.max = v;
      },
      [](DiagStats& into, DiagStats&& from) {
        if (from.min < into.min) {
          into.min = from.min;
          into.min_at = from.min_at;
        }
        if (from.max > into.max) into.max = from.max;
      },
      0);
  if (out.u.rows() > 0 && diag.min <= 0.0) {
    std::ostringstream os;
    os << "empirical covariance diagonal is non-positive: u(" << diag.min_at
       << ", " << diag.min_at << ") = " << diag.min
       << " — a variance cannot be <= 0; check for constant or quarantined-"
          "to-death input fields";
    throw NumericalError(os.str());
  }
  out.diag_condition =
      out.u.rows() > 0 && diag.min > 0.0
          ? diag.max / diag.min
          : std::numeric_limits<double>::infinity();

  // Scale the jitter to the average diagonal so it is "minor" in the paper's
  // sense regardless of the data's units.
  double mean_diag = 0.0;
  for (index_t i = 0; i < out.u.rows(); ++i) mean_diag += out.u(i, i);
  mean_diag /= static_cast<double>(out.u.rows() > 0 ? out.u.rows() : 1);
  const double base = jitter_base * (mean_diag > 0.0 ? mean_diag : 1.0);
  if (out.was_deficient) {
    // Rank-deficient by construction: jitter unconditionally.
    linalg::add_diagonal_jitter(out.u, base);
    out.jitter = base;
  }
  out.jitter += linalg::ensure_positive_definite(out.u, base);
  return out;
}

}  // namespace exaclim::stats
