// Per-location deterministic mean model (Eq. 2 of the paper):
//
//   m_t = beta0 + beta1 * x_{ceil(t/tau)}
//         + beta2 * (1 - rho) * sum_{s>=1} rho^{s-1} x_{ceil(t/tau)-s}
//         + sum_{k=1..K} [ a_k cos(2 pi t k / tau) + b_k sin(2 pi t k / tau) ]
//
// x is the annual radiative-forcing trajectory; tau is the number of time
// steps per year (8760 hourly, 365 daily, 12 monthly); the geometric lag
// weights let past forcing decay with memory parameter rho in [0, 1).
//
// Estimation follows the paper's 1D-MLE-per-location scheme: for fixed rho
// the model is linear, so we profile rho over a grid and solve OLS for each
// candidate — O(T) per location per grid point. Gaussian errors make the
// profiled OLS solution the MLE.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace exaclim::stats {

/// Fitted mean-trend model for one spatial location.
struct TrendModel {
  double beta0 = 0.0;
  double beta1 = 0.0;
  double beta2 = 0.0;
  double rho = 0.0;
  std::vector<double> cos_coeff;  ///< a_k, k = 1..K
  std::vector<double> sin_coeff;  ///< b_k, k = 1..K
  double sigma = 1.0;             ///< residual scale sigma(theta, phi)
  index_t period = 1;             ///< tau
};

struct TrendFitConfig {
  index_t harmonics = 5;  ///< K (paper uses K = 5)
  index_t period = 365;   ///< tau
  /// Profile grid for rho; defaults to {0, 0.05, ..., 0.95}.
  std::vector<double> rho_grid;
};

/// Geometric distributed-lag regressor w_t(rho) for every t in [1, T]:
/// (1 - rho) * sum_{s>=1} rho^{s-1} x_{year(t)-s}, with the pre-sample
/// history frozen at x_1.
std::vector<double> lagged_forcing(std::span<const double> annual_forcing,
                                   index_t num_steps, index_t period,
                                   double rho);

/// Fits the trend to R stacked ensemble series (layout: r-major, each of
/// length T; mean parameters are shared across ensembles per the paper).
TrendModel fit_trend(std::span<const double> y, index_t num_ensembles,
                     index_t num_steps,
                     std::span<const double> annual_forcing,
                     const TrendFitConfig& config);

/// Evaluates m_t for t = 1..T.
std::vector<double> trend_series(const TrendModel& model, index_t num_steps,
                                 std::span<const double> annual_forcing);

}  // namespace exaclim::stats
