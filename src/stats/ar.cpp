#include "stats/ar.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/solve.hpp"

namespace exaclim::stats {

namespace {

/// Accumulates the AR normal equations from one series segment.
struct ArAccumulator {
  explicit ArAccumulator(index_t order)
      : p(order), xtx(order, order), xty(static_cast<std::size_t>(order), 0.0) {}

  void add_series(std::span<const double> y) {
    const index_t n = static_cast<index_t>(y.size());
    for (index_t t = p; t < n; ++t) {
      for (index_t a = 0; a < p; ++a) {
        const double xa = y[static_cast<std::size_t>(t - 1 - a)];
        xty[static_cast<std::size_t>(a)] += xa * y[static_cast<std::size_t>(t)];
        for (index_t b = a; b < p; ++b) {
          xtx(a, b) += xa * y[static_cast<std::size_t>(t - 1 - b)];
        }
      }
      ++samples;
    }
  }

  ArModel solve(std::span<const double> all, index_t num_ensembles,
                index_t num_steps) {
    for (index_t a = 0; a < p; ++a) {
      for (index_t b = 0; b < a; ++b) xtx(a, b) = xtx(b, a);
    }
    double trace = 0.0;
    for (index_t a = 0; a < p; ++a) trace += xtx(a, a);
    linalg::add_diagonal_jitter(xtx, 1e-12 * (trace > 0.0 ? trace : 1.0));
    linalg::cholesky_dense(xtx);
    ArModel model;
    const auto fwd = linalg::forward_substitute(xtx, xty);
    model.phi = linalg::backward_substitute(xtx, fwd);

    double sse = 0.0;
    for (index_t r = 0; r < num_ensembles; ++r) {
      const auto y = all.subspan(static_cast<std::size_t>(r * num_steps),
                                 static_cast<std::size_t>(num_steps));
      for (index_t t = p; t < num_steps; ++t) {
        double pred = 0.0;
        for (index_t a = 0; a < p; ++a) {
          pred += model.phi[static_cast<std::size_t>(a)] *
                  y[static_cast<std::size_t>(t - 1 - a)];
        }
        const double resid = y[static_cast<std::size_t>(t)] - pred;
        sse += resid * resid;
      }
    }
    model.innovation_variance =
        samples > p ? sse / static_cast<double>(samples - p) : sse;
    return model;
  }

  index_t p;
  linalg::Matrix xtx;
  std::vector<double> xty;
  index_t samples = 0;
};

}  // namespace

ArModel fit_ar(std::span<const double> series, index_t order) {
  return fit_ar_ensemble(series, 1, static_cast<index_t>(series.size()), order);
}

ArModel fit_ar_ensemble(std::span<const double> series, index_t num_ensembles,
                        index_t num_steps, index_t order) {
  EXACLIM_CHECK(order >= 1, "AR order must be >= 1");
  EXACLIM_CHECK(static_cast<index_t>(series.size()) ==
                    num_ensembles * num_steps,
                "series length must be R * T");
  EXACLIM_CHECK(num_steps > 2 * order, "series too short for the AR order");
  ArAccumulator acc(order);
  for (index_t r = 0; r < num_ensembles; ++r) {
    acc.add_series(series.subspan(static_cast<std::size_t>(r * num_steps),
                                  static_cast<std::size_t>(num_steps)));
  }
  return acc.solve(series, num_ensembles, num_steps);
}

std::vector<double> ar_residuals(const ArModel& model,
                                 std::span<const double> series) {
  const index_t p = static_cast<index_t>(model.phi.size());
  const index_t n = static_cast<index_t>(series.size());
  EXACLIM_CHECK(n > p, "series shorter than AR order");
  std::vector<double> out(static_cast<std::size_t>(n - p));
  for (index_t t = p; t < n; ++t) {
    double pred = 0.0;
    for (index_t a = 0; a < p; ++a) {
      pred += model.phi[static_cast<std::size_t>(a)] *
              series[static_cast<std::size_t>(t - 1 - a)];
    }
    out[static_cast<std::size_t>(t - p)] =
        series[static_cast<std::size_t>(t)] - pred;
  }
  return out;
}

std::vector<double> ar_simulate(const ArModel& model,
                                std::span<const double> innovations) {
  const index_t p = static_cast<index_t>(model.phi.size());
  const index_t n = static_cast<index_t>(innovations.size());
  std::vector<double> out(static_cast<std::size_t>(n), 0.0);
  for (index_t t = 0; t < n; ++t) {
    double v = innovations[static_cast<std::size_t>(t)];
    for (index_t a = 0; a < p && a < t; ++a) {
      v += model.phi[static_cast<std::size_t>(a)] *
           out[static_cast<std::size_t>(t - 1 - a)];
    }
    out[static_cast<std::size_t>(t)] = v;
  }
  return out;
}

}  // namespace exaclim::stats
