#include "stats/ols.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/solve.hpp"

namespace exaclim::stats {

OlsFit ols(const linalg::Matrix& x, std::span<const double> y) {
  const index_t n = x.rows();
  const index_t p = x.cols();
  EXACLIM_CHECK(n == static_cast<index_t>(y.size()),
                "design matrix rows must match observation count");
  EXACLIM_CHECK(n > p, "need more observations than parameters");

  // Normal equations: (X^T X) beta = X^T y.
  linalg::Matrix xtx(p, p);
  std::vector<double> xty(static_cast<std::size_t>(p), 0.0);
  for (index_t r = 0; r < n; ++r) {
    const auto row = x.row(r);
    const double yr = y[static_cast<std::size_t>(r)];
    for (index_t a = 0; a < p; ++a) {
      xty[static_cast<std::size_t>(a)] += row[static_cast<std::size_t>(a)] * yr;
      for (index_t b = a; b < p; ++b) {
        xtx(a, b) += row[static_cast<std::size_t>(a)] * row[static_cast<std::size_t>(b)];
      }
    }
  }
  for (index_t a = 0; a < p; ++a) {
    for (index_t b = 0; b < a; ++b) xtx(a, b) = xtx(b, a);
  }
  // Tiny ridge for near-collinear designs (e.g. constant forcing).
  double trace = 0.0;
  for (index_t a = 0; a < p; ++a) trace += xtx(a, a);
  linalg::add_diagonal_jitter(xtx, 1e-12 * (trace > 0.0 ? trace : 1.0));

  linalg::cholesky_dense(xtx);
  OlsFit fit;
  const auto fwd = linalg::forward_substitute(xtx, xty);
  fit.beta = linalg::backward_substitute(xtx, fwd);

  for (index_t r = 0; r < n; ++r) {
    const auto row = x.row(r);
    double pred = 0.0;
    for (index_t a = 0; a < p; ++a) {
      pred += row[static_cast<std::size_t>(a)] * fit.beta[static_cast<std::size_t>(a)];
    }
    const double resid = y[static_cast<std::size_t>(r)] - pred;
    fit.sse += resid * resid;
  }
  const index_t dof = n - p;
  fit.sigma = std::sqrt(fit.sse / static_cast<double>(dof > 0 ? dof : 1));
  return fit;
}

}  // namespace exaclim::stats
