// Statistical diagnostics used to demonstrate that emulations are
// "statistically consistent with the simulations" (Figures 2 and 4).
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace exaclim::stats {

double mean(std::span<const double> x);
double variance(std::span<const double> x);  ///< unbiased (n-1)
double standard_deviation(std::span<const double> x);
double covariance(std::span<const double> x, std::span<const double> y);
double correlation(std::span<const double> x, std::span<const double> y);

/// Sample autocorrelation for lags 0..max_lag.
std::vector<double> autocorrelation(std::span<const double> x, index_t max_lag);

/// Two-sample Kolmogorov-Smirnov distance sup_x |F_a(x) - F_b(x)|.
double ks_distance(std::span<const double> a, std::span<const double> b);

/// Empirical quantile (q in [0, 1], linear interpolation).
double quantile(std::span<const double> x, double q);

/// Side-by-side moments of two samples (simulation vs emulation).
struct MomentComparison {
  double mean_a = 0.0, mean_b = 0.0;
  double sd_a = 0.0, sd_b = 0.0;
  double q05_a = 0.0, q05_b = 0.0;
  double q95_a = 0.0, q95_b = 0.0;
  double ks = 0.0;
};

MomentComparison compare_moments(std::span<const double> a,
                                 std::span<const double> b);

}  // namespace exaclim::stats
