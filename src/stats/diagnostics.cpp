#include "stats/diagnostics.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace exaclim::stats {

double mean(std::span<const double> x) {
  EXACLIM_CHECK(!x.empty(), "mean of empty sample");
  double acc = 0.0;
  for (double v : x) acc += v;
  return acc / static_cast<double>(x.size());
}

double variance(std::span<const double> x) {
  EXACLIM_CHECK(x.size() >= 2, "variance needs at least two samples");
  const double m = mean(x);
  double acc = 0.0;
  for (double v : x) acc += (v - m) * (v - m);
  return acc / static_cast<double>(x.size() - 1);
}

double standard_deviation(std::span<const double> x) {
  return std::sqrt(variance(x));
}

double covariance(std::span<const double> x, std::span<const double> y) {
  EXACLIM_CHECK(x.size() == y.size() && x.size() >= 2,
                "covariance needs two equal-length samples, n >= 2");
  const double mx = mean(x);
  const double my = mean(y);
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += (x[i] - mx) * (y[i] - my);
  return acc / static_cast<double>(x.size() - 1);
}

double correlation(std::span<const double> x, std::span<const double> y) {
  const double sx = standard_deviation(x);
  const double sy = standard_deviation(y);
  EXACLIM_CHECK(sx > 0.0 && sy > 0.0, "correlation of a constant sample");
  return covariance(x, y) / (sx * sy);
}

std::vector<double> autocorrelation(std::span<const double> x,
                                    index_t max_lag) {
  EXACLIM_CHECK(static_cast<index_t>(x.size()) > max_lag,
                "series shorter than requested lag");
  const double m = mean(x);
  const index_t n = static_cast<index_t>(x.size());
  double denom = 0.0;
  for (double v : x) denom += (v - m) * (v - m);
  EXACLIM_CHECK(denom > 0.0, "autocorrelation of a constant series");
  std::vector<double> out(static_cast<std::size_t>(max_lag + 1));
  for (index_t lag = 0; lag <= max_lag; ++lag) {
    double acc = 0.0;
    for (index_t t = lag; t < n; ++t) {
      acc += (x[static_cast<std::size_t>(t)] - m) *
             (x[static_cast<std::size_t>(t - lag)] - m);
    }
    out[static_cast<std::size_t>(lag)] = acc / denom;
  }
  return out;
}

double ks_distance(std::span<const double> a, std::span<const double> b) {
  EXACLIM_CHECK(!a.empty() && !b.empty(), "KS distance of empty samples");
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  double d = 0.0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < sa.size() && ib < sb.size()) {
    if (sa[ia] <= sb[ib]) {
      ++ia;
    } else {
      ++ib;
    }
    const double fa = static_cast<double>(ia) / static_cast<double>(sa.size());
    const double fb = static_cast<double>(ib) / static_cast<double>(sb.size());
    d = std::max(d, std::abs(fa - fb));
  }
  return d;
}

double quantile(std::span<const double> x, double q) {
  EXACLIM_CHECK(!x.empty(), "quantile of empty sample");
  EXACLIM_CHECK(q >= 0.0 && q <= 1.0, "quantile level must lie in [0, 1]");
  std::vector<double> s(x.begin(), x.end());
  std::sort(s.begin(), s.end());
  const double pos = q * static_cast<double>(s.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, s.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return s[lo] * (1.0 - frac) + s[hi] * frac;
}

MomentComparison compare_moments(std::span<const double> a,
                                 std::span<const double> b) {
  MomentComparison c;
  c.mean_a = mean(a);
  c.mean_b = mean(b);
  c.sd_a = standard_deviation(a);
  c.sd_b = standard_deviation(b);
  c.q05_a = quantile(a, 0.05);
  c.q05_b = quantile(b, 0.05);
  c.q95_a = quantile(a, 0.95);
  c.q95_b = quantile(b, 0.95);
  c.ks = ks_distance(a, b);
  return c;
}

}  // namespace exaclim::stats
