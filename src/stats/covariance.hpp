// Empirical covariance of VAR innovations (Eq. 9) and PD repair.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace exaclim::stats {

/// U-hat = (1 / N) sum_n xi_n xi_n^T over N sample vectors of dimension d
/// (Eq. 9 with N = R (T - P)). Samples are rows of `samples` (N x d).
linalg::Matrix empirical_covariance(const linalg::Matrix& samples);

/// Same, parallelized over the output's lower triangle (the O(L^4 T) step of
/// the paper's training pipeline).
linalg::Matrix empirical_covariance_parallel(const linalg::Matrix& samples,
                                             unsigned threads = 0);

/// Result of the covariance preparation step.
struct PreparedCovariance {
  linalg::Matrix u;        ///< (possibly jittered) covariance
  double jitter = 0.0;     ///< diagonal perturbation applied
  bool was_deficient = false;  ///< true iff N < d (paper's R(T-P) < L^2 case)
  /// max(diag) / min(diag) of the raw empirical covariance — a cheap
  /// condition proxy recorded before any jitter; +inf when min(diag) <= 0.
  double diag_condition = 0.0;
};

/// Builds U-hat and, when the sample count is below the dimension (or the
/// matrix is otherwise numerically indefinite), applies the paper's "minor
/// perturbation along the diagonal".
///
/// Pre-checks run before any tile is built from the result: a non-finite
/// entry or a non-positive diagonal in the raw empirical covariance throws
/// NumericalError naming the offending (row, col) — malformed input fails
/// here, structurally, instead of deep inside the factorization DAG.
PreparedCovariance prepare_covariance(const linalg::Matrix& samples,
                                      double jitter_base = 1e-10);

}  // namespace exaclim::stats
