// Ljung-Box portmanteau test for residual whiteness.
//
// The emulator's VAR(P) is adequate exactly when its innovations xi_t are
// white; the Ljung-Box statistic Q = n(n+2) sum_{k=1..h} r_k^2/(n-k) is the
// standard check (compared against a chi-square with h - P dof). Used by
// model-order diagnostics and the ablation bench on P.
#pragma once

#include <span>

#include "common/types.hpp"

namespace exaclim::stats {

struct LjungBoxResult {
  double statistic = 0.0;   ///< Q
  index_t dof = 0;          ///< h - fitted_params (floored at 1)
  double p_value = 0.0;     ///< P(chi2_dof > Q)
  bool white(double alpha = 0.05) const { return p_value > alpha; }
};

/// Runs the test on a residual series with `lags` autocorrelation terms;
/// `fitted_params` adjusts the degrees of freedom (use P for AR(P) output).
LjungBoxResult ljung_box(std::span<const double> residuals, index_t lags,
                         index_t fitted_params = 0);

/// Upper-tail probability of a chi-square distribution (regularized upper
/// incomplete gamma Q(k/2, x/2), via a continued-fraction/series evaluation).
double chi_square_sf(double x, double dof);

}  // namespace exaclim::stats
