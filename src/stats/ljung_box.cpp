#include "stats/ljung_box.hpp"

#include <cmath>

#include "common/error.hpp"
#include "stats/diagnostics.hpp"

namespace exaclim::stats {

namespace {

/// Regularized lower incomplete gamma P(a, x) by series (x < a + 1).
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  for (int n = 1; n < 500; ++n) {
    term *= x / (a + n);
    sum += term;
    if (term < sum * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Regularized upper incomplete gamma Q(a, x) by continued fraction
/// (x >= a + 1), Lentz's algorithm.
double gamma_q_cf(double a, double x) {
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double chi_square_sf(double x, double dof) {
  EXACLIM_CHECK(dof > 0.0, "chi-square dof must be positive");
  if (x <= 0.0) return 1.0;
  const double a = dof / 2.0;
  const double xx = x / 2.0;
  if (xx < a + 1.0) return 1.0 - gamma_p_series(a, xx);
  return gamma_q_cf(a, xx);
}

LjungBoxResult ljung_box(std::span<const double> residuals, index_t lags,
                         index_t fitted_params) {
  const index_t n = static_cast<index_t>(residuals.size());
  EXACLIM_CHECK(lags >= 1, "need at least one lag");
  EXACLIM_CHECK(n > lags + 1, "series too short for the requested lags");
  const auto acf = autocorrelation(residuals, lags);
  double q = 0.0;
  for (index_t k = 1; k <= lags; ++k) {
    const double r = acf[static_cast<std::size_t>(k)];
    q += r * r / static_cast<double>(n - k);
  }
  q *= static_cast<double>(n) * (static_cast<double>(n) + 2.0);

  LjungBoxResult result;
  result.statistic = q;
  result.dof = std::max<index_t>(1, lags - fitted_params);
  result.p_value = chi_square_sf(q, static_cast<double>(result.dof));
  return result;
}

}  // namespace exaclim::stats
