#include "stats/trend.hpp"

#include <cmath>

#include "common/error.hpp"
#include "stats/ols.hpp"

namespace exaclim::stats {

namespace {

/// Year index (1-based) of time step t (1-based): ceil(t / tau).
index_t year_of(index_t t, index_t period) {
  return (t + period - 1) / period;
}

/// Builds the (T x (3 + 2K)) design matrix for a fixed rho.
linalg::Matrix build_design(std::span<const double> annual_forcing,
                            index_t num_steps, index_t period,
                            index_t harmonics, double rho) {
  const index_t cols = 3 + 2 * harmonics;
  linalg::Matrix x(num_steps, cols);
  const std::vector<double> lagged =
      lagged_forcing(annual_forcing, num_steps, period, rho);
  for (index_t t = 1; t <= num_steps; ++t) {
    const index_t row = t - 1;
    const index_t year = year_of(t, period);
    EXACLIM_CHECK(year <= static_cast<index_t>(annual_forcing.size()),
                  "forcing trajectory shorter than the series implies");
    x(row, 0) = 1.0;
    x(row, 1) = annual_forcing[static_cast<std::size_t>(year - 1)];
    x(row, 2) = lagged[static_cast<std::size_t>(row)];
    for (index_t k = 1; k <= harmonics; ++k) {
      const double angle = kTwoPi * static_cast<double>(t) *
                           static_cast<double>(k) /
                           static_cast<double>(period);
      x(row, 2 + 2 * k - 1) = std::cos(angle);
      x(row, 2 + 2 * k) = std::sin(angle);
    }
  }
  return x;
}

}  // namespace

std::vector<double> lagged_forcing(std::span<const double> annual_forcing,
                                   index_t num_steps, index_t period,
                                   double rho) {
  EXACLIM_CHECK(!annual_forcing.empty(), "forcing trajectory must be non-empty");
  EXACLIM_CHECK(rho >= 0.0 && rho < 1.0, "rho must lie in [0, 1)");
  EXACLIM_CHECK(period >= 1, "period must be >= 1");
  const index_t num_years = year_of(num_steps, period);
  EXACLIM_CHECK(num_years <= static_cast<index_t>(annual_forcing.size()),
                "forcing trajectory shorter than the series implies");
  // W_y = (1 - rho) sum_{s>=1} rho^{s-1} x_{y-s}; with pre-sample history
  // frozen at x_1 this gives W_1 = x_1 and the recursion
  // W_y = rho W_{y-1} + (1 - rho) x_{y-1}.
  std::vector<double> w_year(static_cast<std::size_t>(num_years));
  w_year[0] = annual_forcing[0];
  for (index_t y = 2; y <= num_years; ++y) {
    w_year[static_cast<std::size_t>(y - 1)] =
        rho * w_year[static_cast<std::size_t>(y - 2)] +
        (1.0 - rho) * annual_forcing[static_cast<std::size_t>(y - 2)];
  }
  std::vector<double> out(static_cast<std::size_t>(num_steps));
  for (index_t t = 1; t <= num_steps; ++t) {
    out[static_cast<std::size_t>(t - 1)] =
        w_year[static_cast<std::size_t>(year_of(t, period) - 1)];
  }
  return out;
}

TrendModel fit_trend(std::span<const double> y, index_t num_ensembles,
                     index_t num_steps,
                     std::span<const double> annual_forcing,
                     const TrendFitConfig& config) {
  EXACLIM_CHECK(num_ensembles >= 1 && num_steps >= 1,
                "need at least one ensemble and one step");
  EXACLIM_CHECK(static_cast<index_t>(y.size()) == num_ensembles * num_steps,
                "series length must be R * T");
  std::vector<double> rho_grid = config.rho_grid;
  if (rho_grid.empty()) {
    for (int i = 0; i < 20; ++i) rho_grid.push_back(0.05 * i);
  }

  TrendModel best;
  double best_sse = -1.0;
  for (double rho : rho_grid) {
    // One design block per ensemble would be identical (shared regressors);
    // stack by repeating the design implicitly: fit the ensemble-mean series,
    // which yields the same OLS estimate, then measure SSE on all ensembles.
    linalg::Matrix x = build_design(annual_forcing, num_steps, config.period,
                                    config.harmonics, rho);
    std::vector<double> ymean(static_cast<std::size_t>(num_steps), 0.0);
    for (index_t r = 0; r < num_ensembles; ++r) {
      for (index_t t = 0; t < num_steps; ++t) {
        ymean[static_cast<std::size_t>(t)] +=
            y[static_cast<std::size_t>(r * num_steps + t)];
      }
    }
    for (auto& v : ymean) v /= static_cast<double>(num_ensembles);
    const OlsFit fit = ols(x, ymean);

    // Full-ensemble SSE for model selection and sigma.
    double sse = 0.0;
    for (index_t t = 0; t < num_steps; ++t) {
      double pred = 0.0;
      const auto row = x.row(t);
      for (std::size_t a = 0; a < fit.beta.size(); ++a) {
        pred += row[a] * fit.beta[a];
      }
      for (index_t r = 0; r < num_ensembles; ++r) {
        const double resid =
            y[static_cast<std::size_t>(r * num_steps + t)] - pred;
        sse += resid * resid;
      }
    }
    if (best_sse < 0.0 || sse < best_sse) {
      best_sse = sse;
      best.beta0 = fit.beta[0];
      best.beta1 = fit.beta[1];
      best.beta2 = fit.beta[2];
      best.rho = rho;
      best.cos_coeff.assign(static_cast<std::size_t>(config.harmonics), 0.0);
      best.sin_coeff.assign(static_cast<std::size_t>(config.harmonics), 0.0);
      for (index_t k = 1; k <= config.harmonics; ++k) {
        best.cos_coeff[static_cast<std::size_t>(k - 1)] =
            fit.beta[static_cast<std::size_t>(2 + 2 * k - 1)];
        best.sin_coeff[static_cast<std::size_t>(k - 1)] =
            fit.beta[static_cast<std::size_t>(2 + 2 * k)];
      }
      best.period = config.period;
      const double dof = static_cast<double>(num_ensembles * num_steps) -
                         static_cast<double>(3 + 2 * config.harmonics);
      best.sigma = std::sqrt(sse / (dof > 0.0 ? dof : 1.0));
    }
  }
  // A flat series can produce sigma == 0, which would make the stochastic
  // rescale degenerate; clamp to a tiny floor.
  if (best.sigma <= 0.0) best.sigma = 1e-12;
  return best;
}

std::vector<double> trend_series(const TrendModel& model, index_t num_steps,
                                 std::span<const double> annual_forcing) {
  const std::vector<double> lagged =
      lagged_forcing(annual_forcing, num_steps, model.period, model.rho);
  std::vector<double> out(static_cast<std::size_t>(num_steps));
  for (index_t t = 1; t <= num_steps; ++t) {
    const index_t year = year_of(t, model.period);
    double v = model.beta0 +
               model.beta1 *
                   annual_forcing[static_cast<std::size_t>(year - 1)] +
               model.beta2 * lagged[static_cast<std::size_t>(t - 1)];
    for (std::size_t k = 1; k <= model.cos_coeff.size(); ++k) {
      const double angle = kTwoPi * static_cast<double>(t) *
                           static_cast<double>(k) /
                           static_cast<double>(model.period);
      v += model.cos_coeff[k - 1] * std::cos(angle) +
           model.sin_coeff[k - 1] * std::sin(angle);
    }
    out[static_cast<std::size_t>(t - 1)] = v;
  }
  return out;
}

}  // namespace exaclim::stats
