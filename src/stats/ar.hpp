// Scalar AR(P) fitting for the diagonal VAR model.
//
// The paper models the packed spherical-harmonic coefficient vectors f_t as
// a VAR(P) with *diagonal* Phi_p matrices, which decouples into L^2
// independent scalar AR(P) problems (Section III-A.3). Each is fit by
// conditional least squares over all ensembles.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace exaclim::stats {

/// Fitted AR(P) model for one coefficient index.
struct ArModel {
  std::vector<double> phi;            ///< phi_1..phi_P
  double innovation_variance = 0.0;   ///< var of xi_t
};

/// Fits AR(P) by least squares on one series. Requires series length > 2P.
ArModel fit_ar(std::span<const double> series, index_t order);

/// Fits a shared AR(P) across R ensemble replicates of the same process
/// (layout: r-major, each of length num_steps).
ArModel fit_ar_ensemble(std::span<const double> series, index_t num_ensembles,
                        index_t num_steps, index_t order);

/// Residuals xi_t = y_t - sum_p phi_p y_{t-p}, t = P..T-1 (length T - P).
std::vector<double> ar_residuals(const ArModel& model,
                                 std::span<const double> series);

/// Simulates T steps of the AR(P) given innovations (length T); the first P
/// values are taken directly from `innovations` scaled history (warm start
/// at zero).
std::vector<double> ar_simulate(const ArModel& model,
                                std::span<const double> innovations);

}  // namespace exaclim::stats
