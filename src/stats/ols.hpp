// Ordinary least squares via normal equations.
//
// Used by the per-location trend fit (Eq. 2 is linear once rho is fixed) and
// the per-coefficient AR(P) fit. Design matrices here are tall and skinny
// (T x ~13), so normal equations + dense Cholesky are both fast and accurate.
#pragma once

#include <span>

#include "linalg/matrix.hpp"

namespace exaclim::stats {

struct OlsFit {
  std::vector<double> beta;   ///< coefficient estimates
  double sse = 0.0;           ///< sum of squared residuals
  double sigma = 0.0;         ///< residual standard deviation (dof-corrected)
};

/// Fits y ~ X beta. Rank deficiency is handled with a tiny ridge on the
/// normal equations (the fit is used inside a profile search, so graceful
/// degradation beats hard failure).
OlsFit ols(const linalg::Matrix& x, std::span<const double> y);

}  // namespace exaclim::stats
