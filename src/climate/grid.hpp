// Physical grid semantics: resolutions, band limits, and named grids.
//
// The paper ties spherical-harmonic band limit L to spatial resolution:
// an equiangular grid with N_theta = L + 1 latitudes spans 180/L degrees per
// step, so L = 720 is ERA5's 0.25 degree (~25 km) and L = 5219 is the
// headline 0.034 degree (~3.5 km).
#pragma once

#include <string>

#include "sht/sht.hpp"

namespace exaclim::climate {

/// Mean Earth radius derived kilometres per degree of latitude.
inline constexpr double kKmPerDegree = 111.195;

/// Grid step in degrees for band limit L (equiangular, poles included).
double band_limit_to_degrees(index_t band_limit);

/// Approximate grid spacing in km at the equator for band limit L.
double band_limit_to_km(index_t band_limit);

/// Band limit whose equiangular grid matches a target resolution in degrees.
index_t degrees_to_band_limit(double degrees);

/// Minimal exact-SHT grid for a band limit: nlat = L + 1, nlon = 2L.
sht::GridShape grid_for_band_limit(index_t band_limit);

/// ERA5-style grid: nlat = L + 1, nlon = 2L (ERA5 itself is 721 x 1440 with
/// L = 720, matching this rule).
sht::GridShape era5_grid();

/// The paper's four evaluated band limits (Section IV-A).
inline constexpr index_t kPaperBandLimits[] = {720, 1440, 2880, 5219};

/// Latitude in degrees (+90 north pole .. -90 south pole) of grid row i.
double latitude_degrees(const sht::GridShape& grid, index_t i);

/// Longitude in degrees [0, 360) of grid column j.
double longitude_degrees(const sht::GridShape& grid, index_t j);

}  // namespace exaclim::climate
