// Annual radiative-forcing trajectories x_t (the covariate of Eq. 2).
//
// The real emulator is driven by published RF time series (historical +
// SSP scenarios); we synthesize trajectories with the same qualitative
// structure: slow anthropogenic growth, episodic volcanic dips, and a
// scenario-dependent future slope.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace exaclim::climate {

/// Historical-like forcing (W/m^2): slow quadratic growth from ~0.3 with
/// three volcanic dips at fixed fractional positions (deterministic, so
/// experiments are reproducible).
std::vector<double> historical_forcing(index_t num_years);

/// Scenario forcing: continues from `start_level` with a constant annual
/// increment (e.g. 0.05 ~ SSP2-4.5-like, 0.1 ~ SSP5-8.5-like).
std::vector<double> scenario_forcing(index_t num_years, double start_level,
                                     double annual_increment);

}  // namespace exaclim::climate
