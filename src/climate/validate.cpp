#include "climate/validate.hpp"

#include <cmath>
#include <sstream>
#include <utility>

#include "common/parallel.hpp"

namespace exaclim::climate {

const char* to_string(ValidationIssueKind kind) {
  switch (kind) {
    case ValidationIssueKind::NonFinite:
      return "non-finite";
    case ValidationIssueKind::OutOfRange:
      return "out-of-range";
    case ValidationIssueKind::ConstantField:
      return "constant-field";
  }
  return "unknown";
}

std::string ValidationIssue::describe() const {
  std::ostringstream os;
  os << to_string(kind) << " at (ensemble=" << ensemble << ", step=" << step;
  if (kind != ValidationIssueKind::ConstantField) {
    os << ", lat=" << lat << ", lon=" << lon << ") value=" << value;
  } else {
    os << ") value=" << value;
  }
  return os.str();
}

ValidationError::ValidationError(std::vector<ValidationIssue> issues,
                                 std::size_t total)
    : Error(format(issues, total)), issues_(std::move(issues)), total_(total) {}

std::string ValidationError::format(const std::vector<ValidationIssue>& issues,
                                    std::size_t total) {
  std::ostringstream os;
  os << "dataset validation failed: " << total << " issue"
     << (total == 1 ? "" : "s") << " flagged";
  if (!issues.empty()) {
    os << "; first " << issues.size() << ":";
    for (const auto& issue : issues) os << " [" << issue.describe() << "]";
  }
  os << " — fix the input, or pass --quarantine to mask and impute "
        "cell-level issues";
  return os.str();
}

namespace {

// Per-field scan results, combined deterministically across fields.
struct ScanState {
  ValidationSummary summary;
  std::vector<ValidationIssue> first_issues;  // capped at opts.max_reported
};

void note_issue(ScanState& s, const ValidationOptions& opts,
                ValidationIssue issue) {
  if (s.first_issues.size() < opts.max_reported) {
    s.first_issues.push_back(issue);
  }
}

// Scans (and, when quarantining, repairs) one (ensemble, step) field.
// Mutation is confined to this field's cells, so fields can run in parallel.
void scan_field(ClimateDataset* mutable_data, const ClimateDataset& data,
                index_t r, index_t t, const ValidationOptions& opts,
                ScanState& s) {
  const auto field = data.field(r, t);
  const index_t nlon = data.grid().nlon;
  const index_t n = static_cast<index_t>(field.size());

  double valid_sum = 0.0;
  index_t valid_count = 0;
  double first_valid = 0.0;
  bool constant = true;
  bool saw_valid = false;
  for (index_t p = 0; p < n; ++p) {
    const double v = field[static_cast<std::size_t>(p)];
    const bool finite = std::isfinite(v);
    const bool in_range = finite && v >= opts.min_value && v <= opts.max_value;
    if (!finite) {
      ++s.summary.non_finite;
      note_issue(s, opts,
                 {ValidationIssueKind::NonFinite, r, t, p / nlon, p % nlon, v});
      continue;
    }
    if (!in_range) {
      ++s.summary.out_of_range;
      note_issue(s, opts,
                 {ValidationIssueKind::OutOfRange, r, t, p / nlon, p % nlon, v});
      continue;
    }
    if (saw_valid && v != first_valid) constant = false;
    if (!saw_valid) {
      first_valid = v;
      saw_valid = true;
    }
    valid_sum += v;
    ++valid_count;
  }

  // A field whose valid cells never vary has no stochastic component to fit
  // (sigma = 0 divides the standardization); no cell-level repair exists.
  // Equally fatal: every cell flagged — nothing to impute from.
  if (!saw_valid || (constant && valid_count == n)) {
    ++s.summary.constant_fields;
    note_issue(s, opts,
               {ValidationIssueKind::ConstantField, r, t, -1, -1, first_valid});
    return;
  }

  if (mutable_data != nullptr && opts.quarantine &&
      valid_count < n) {
    const double mean = valid_sum / static_cast<double>(valid_count);
    auto dst = mutable_data->field(r, t);
    for (index_t p = 0; p < n; ++p) {
      double& v = dst[static_cast<std::size_t>(p)];
      if (!std::isfinite(v) || v < opts.min_value || v > opts.max_value) {
        v = mean;
        ++s.summary.quarantined;
      }
    }
  }
}

ValidationSummary validate_impl(ClimateDataset* mutable_data,
                                const ClimateDataset& data,
                                const ValidationOptions& opts) {
  const index_t R = data.num_ensembles();
  const index_t T = data.num_steps();
  if (R <= 0 || T <= 0) return {};

  // Chunk-stable reduce over fields: counts and the "first issues" list come
  // out identical at any thread count, so the error text is reproducible.
  ScanState merged = common::parallel_reduce(
      0, R * T, ScanState{},
      [&](ScanState& acc, index_t rt) {
        scan_field(mutable_data, data, rt / T, rt % T, opts, acc);
      },
      [&opts](ScanState& into, ScanState&& from) {
        into.summary.non_finite += from.summary.non_finite;
        into.summary.out_of_range += from.summary.out_of_range;
        into.summary.constant_fields += from.summary.constant_fields;
        into.summary.quarantined += from.summary.quarantined;
        for (auto& issue : from.first_issues) {
          if (into.first_issues.size() >= opts.max_reported) break;
          into.first_issues.push_back(issue);
        }
      });

  const bool quarantining = mutable_data != nullptr && opts.quarantine;
  const std::size_t fatal =
      merged.summary.constant_fields +
      (quarantining ? 0 : merged.summary.non_finite +
                              merged.summary.out_of_range);
  if (fatal > 0) {
    throw ValidationError(std::move(merged.first_issues),
                          merged.summary.flagged());
  }
  return merged.summary;
}

}  // namespace

ValidationSummary validate_dataset(ClimateDataset& data,
                                   const ValidationOptions& opts) {
  return validate_impl(&data, data, opts);
}

ValidationSummary validate_dataset(const ClimateDataset& data,
                                   const ValidationOptions& opts) {
  return validate_impl(nullptr, data, opts);
}

}  // namespace exaclim::climate
