#include "climate/storage_model.hpp"

#include <array>
#include <cstdio>
#include <string>

#include "common/error.hpp"

namespace exaclim::climate {

StorageReport storage_report(const StorageParams& p) {
  EXACLIM_CHECK(p.num_steps >= 1 && p.num_ensembles >= 1 && p.band_limit >= 1,
                "invalid storage parameters");
  StorageReport r;
  const double points = static_cast<double>(p.grid.num_points());
  r.raw_bytes = static_cast<double>(p.num_ensembles) *
                static_cast<double>(p.num_steps) * points *
                static_cast<double>(p.bytes_per_value);

  // Per-location: beta0, beta1, beta2, rho, sigma, v plus K (cos, sin) pairs.
  const double per_location = 6.0 + 2.0 * static_cast<double>(p.harmonics);
  r.trend_bytes = points * per_location *
                  static_cast<double>(p.emulator_bytes_per_value);
  const double l2 = static_cast<double>(p.band_limit) *
                    static_cast<double>(p.band_limit);
  r.var_bytes = static_cast<double>(p.ar_order) * l2 *
                static_cast<double>(p.emulator_bytes_per_value);
  r.factor_bytes = 0.5 * l2 * (l2 + 1.0) *
                   static_cast<double>(p.emulator_bytes_per_value) *
                   p.factor_compression;
  r.emulator_bytes = r.trend_bytes + r.var_bytes + r.factor_bytes;
  r.savings_ratio = r.emulator_bytes > 0.0 ? r.raw_bytes / r.emulator_bytes : 0.0;

  const double usd_per_byte_year = p.usd_per_terabyte_year / 1e12;
  r.raw_usd_per_year = r.raw_bytes * usd_per_byte_year;
  r.emulator_usd_per_year = r.emulator_bytes * usd_per_byte_year;
  return r;
}

std::string format_bytes(double bytes) {
  static constexpr std::array<const char*, 7> units = {"B",  "KB", "MB", "GB",
                                                       "TB", "PB", "EB"};
  int unit = 0;
  while (bytes >= 1000.0 && unit + 1 < static_cast<int>(units.size())) {
    bytes /= 1000.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, units[static_cast<std::size_t>(unit)]);
  return buf;
}

}  // namespace exaclim::climate
