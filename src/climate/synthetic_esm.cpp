#include "climate/synthetic_esm.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "sht/packing.hpp"

namespace exaclim::climate {

namespace {

/// Smooth, strictly positive stochastic-scale modulation sigma(theta, phi):
/// the longitudinal dependence breaks axial symmetry on purpose.
double sigma_true(double theta, double phi) {
  return 1.0 + 0.25 * std::sin(theta) * std::cos(phi - 0.7);
}

/// Land/sea-like stationary anisotropic pattern (band-limited by
/// construction: orders 2 and 3 only).
double anisotropic_pattern(double theta, double phi) {
  const double s = std::sin(theta);
  return 0.6 * s * s * std::cos(2.0 * phi) +
         0.4 * s * s * s * std::cos(3.0 * phi + 1.0);
}

}  // namespace

SyntheticEsm generate_synthetic_esm(const SyntheticEsmConfig& config) {
  const index_t L = config.band_limit;
  const sht::GridShape grid = config.grid;
  EXACLIM_CHECK(L >= 4, "band limit must be >= 4 (the mean uses order 3)");
  EXACLIM_CHECK(grid.nlat >= L + 1 && grid.nlon >= 2 * L - 1,
                "grid too coarse for the requested band limit");
  const index_t tau = config.steps_per_year;
  const index_t num_steps = config.num_years * tau;
  const index_t num_ensembles = config.num_ensembles;

  SyntheticEsm out;
  out.forcing = config.forcing.empty() ? historical_forcing(config.num_years)
                                       : config.forcing;
  EXACLIM_CHECK(static_cast<index_t>(out.forcing.size()) >= config.num_years,
                "forcing trajectory shorter than num_years");
  out.data = ClimateDataset(grid, num_steps, num_ensembles, tau);

  // --- Weather process parameters -------------------------------------
  // Spectrum C_l ~ (1 + l)^{-alpha}, scaled so the synthesized field variance
  // is weather_scale^2: Var(Z) = sum_l (2l+1)/(4 pi) C_l.
  std::vector<double> c_l(static_cast<std::size_t>(L));
  double field_var = 0.0;
  for (index_t l = 0; l < L; ++l) {
    c_l[static_cast<std::size_t>(l)] =
        std::pow(1.0 + static_cast<double>(l), -config.spectrum_alpha);
    field_var +=
        (2.0 * l + 1.0) / (4.0 * kPi) * c_l[static_cast<std::size_t>(l)];
  }
  const double spectrum_scale =
      config.weather_scale * config.weather_scale / field_var;
  for (auto& v : c_l) v *= spectrum_scale;
  // Degree-dependent persistence: large scales persist longer.
  std::vector<double> phi_l(static_cast<std::size_t>(L));
  for (index_t l = 0; l < L; ++l) {
    phi_l[static_cast<std::size_t>(l)] =
        0.8 * std::pow(1.0 + static_cast<double>(l), -0.3);
  }
  out.true_ar1 = phi_l[1];

  const sht::SHTPlan plan(L, grid);
  const index_t n_coeff = sht::tri_count(L);

  // Precompute grid geometry and static fields.
  const index_t nlat = grid.nlat;
  const index_t nlon = grid.nlon;
  std::vector<double> base(static_cast<std::size_t>(grid.num_points()));
  std::vector<double> beta(static_cast<std::size_t>(grid.num_points()));
  std::vector<double> sigma(static_cast<std::size_t>(grid.num_points()));
  for (index_t i = 0; i < nlat; ++i) {
    const double theta = grid.colatitude(i);
    const double s2 = std::sin(theta) * std::sin(theta);
    const double mu = std::cos(theta);  // +1 N pole .. -1 S pole
    for (index_t j = 0; j < nlon; ++j) {
      const double phi = grid.longitude(j);
      const std::size_t p = static_cast<std::size_t>(i * nlon + j);
      base[p] = config.mean_pole_kelvin +
                (config.mean_equator_kelvin - config.mean_pole_kelvin) * s2 +
                config.anisotropy_kelvin * anisotropic_pattern(theta, phi);
      beta[p] = config.warming_per_forcing *
                (1.0 + (config.polar_amplification - 1.0) * mu * mu);
      sigma[p] = sigma_true(theta, phi);
    }
  }

  // --- Generate each ensemble member -----------------------------------
  common::Rng master(config.seed);
  for (index_t r = 0; r < num_ensembles; ++r) {
    common::Rng rng = master.split(static_cast<std::uint64_t>(r) + 1);

    // Evolve the coefficient AR(1) processes through time (sequential), then
    // synthesize fields in parallel.
    std::vector<std::vector<cplx>> coeff_series(
        static_cast<std::size_t>(num_steps));
    std::vector<cplx> state(static_cast<std::size_t>(n_coeff), cplx{0.0, 0.0});
    // Warm start at the stationary distribution.
    for (index_t l = 0; l < L; ++l) {
      const double cl = c_l[static_cast<std::size_t>(l)];
      state[static_cast<std::size_t>(sht::tri_index(l, 0))] =
          cplx{rng.normal(0.0, std::sqrt(cl)), 0.0};
      for (index_t m = 1; m <= l; ++m) {
        state[static_cast<std::size_t>(sht::tri_index(l, m))] =
            cplx{rng.normal(0.0, std::sqrt(cl / 2.0)),
                 rng.normal(0.0, std::sqrt(cl / 2.0))};
      }
    }
    for (index_t t = 0; t < num_steps; ++t) {
      for (index_t l = 0; l < L; ++l) {
        const double phi_ar = phi_l[static_cast<std::size_t>(l)];
        const double cl = c_l[static_cast<std::size_t>(l)];
        const double innov_sd = std::sqrt(cl * (1.0 - phi_ar * phi_ar));
        {
          auto& z = state[static_cast<std::size_t>(sht::tri_index(l, 0))];
          z = cplx{phi_ar * z.real() + rng.normal(0.0, innov_sd), 0.0};
        }
        for (index_t m = 1; m <= l; ++m) {
          auto& z = state[static_cast<std::size_t>(sht::tri_index(l, m))];
          const double half_sd = innov_sd / std::sqrt(2.0);
          z = cplx{phi_ar * z.real() + rng.normal(0.0, half_sd),
                   phi_ar * z.imag() + rng.normal(0.0, half_sd)};
        }
      }
      coeff_series[static_cast<std::size_t>(t)] = state;
    }

    // Per-time-step nugget seeds (so parallel synthesis stays deterministic).
    std::vector<std::uint64_t> nugget_seeds(
        static_cast<std::size_t>(num_steps));
    for (auto& s : nugget_seeds) s = rng.next_u64();

    common::parallel_for(0, num_steps, [&](index_t t) {
      const std::vector<double> weather =
          plan.synthesize(coeff_series[static_cast<std::size_t>(t)]);
      auto field = out.data.field(r, t);
      const index_t year = t / tau;  // 0-based
      const double x_year = out.forcing[static_cast<std::size_t>(year)];
      const double season_angle =
          kTwoPi * static_cast<double>(t % tau) / static_cast<double>(tau);
      common::Rng nug(nugget_seeds[static_cast<std::size_t>(t)]);
      for (index_t i = 0; i < nlat; ++i) {
        const double theta = grid.colatitude(i);
        const double mu = std::cos(theta);
        const double sin_theta = std::sin(theta);
        for (index_t j = 0; j < nlon; ++j) {
          const double phi = grid.longitude(j);
          const std::size_t p = static_cast<std::size_t>(i * nlon + j);
          double v = base[p] + beta[p] * x_year;
          v += config.seasonal_amplitude * mu * std::cos(season_angle);
          if (config.steps_per_day > 1) {
            const double day_angle =
                kTwoPi * static_cast<double>(t % config.steps_per_day) /
                static_cast<double>(config.steps_per_day);
            v += config.diurnal_amplitude * sin_theta *
                 std::cos(day_angle - phi);
          }
          v += sigma[p] * weather[p];
          v += config.nugget_noise * nug.normal();
          field[p] = v;
        }
      }
    });
  }

  // Ground-truth trend at (equator, lon 0) for tests: everything except
  // weather and nugget.
  {
    const index_t i_eq = (nlat - 1) / 2;
    const double theta = grid.colatitude(i_eq);
    const double mu = std::cos(theta);
    const double s2 = std::sin(theta) * std::sin(theta);
    const double phi = grid.longitude(0);
    const double b = config.mean_pole_kelvin +
                     (config.mean_equator_kelvin - config.mean_pole_kelvin) * s2 +
                     config.anisotropy_kelvin * anisotropic_pattern(theta, phi);
    const double bt = config.warming_per_forcing *
                      (1.0 + (config.polar_amplification - 1.0) * mu * mu);
    out.true_trend_equator.resize(static_cast<std::size_t>(num_steps));
    for (index_t t = 0; t < num_steps; ++t) {
      const index_t year = t / tau;
      double v = b + bt * out.forcing[static_cast<std::size_t>(year)];
      v += config.seasonal_amplitude * mu *
           std::cos(kTwoPi * static_cast<double>(t % tau) /
                    static_cast<double>(tau));
      if (config.steps_per_day > 1) {
        const double day_angle =
            kTwoPi * static_cast<double>(t % config.steps_per_day) /
            static_cast<double>(config.steps_per_day);
        v += config.diurnal_amplitude * std::sin(theta) *
             std::cos(day_angle - phi);
      }
      out.true_trend_equator[static_cast<std::size_t>(t)] = v;
    }
  }
  return out;
}

BivariateEsm generate_bivariate_esm(const SyntheticEsmConfig& config,
                                    double cross_loading) {
  EXACLIM_CHECK(cross_loading >= -1.0 && cross_loading <= 1.0,
                "cross loading must lie in [-1, 1]");
  const index_t L = config.band_limit;
  const sht::GridShape grid = config.grid;
  EXACLIM_CHECK(L >= 4, "band limit must be >= 4");
  EXACLIM_CHECK(grid.nlat >= L + 1 && grid.nlon >= 2 * L - 1,
                "grid too coarse for the requested band limit");
  const index_t tau = config.steps_per_year;
  const index_t num_steps = config.num_years * tau;
  const index_t num_ensembles = config.num_ensembles;
  const index_t n_coeff = sht::tri_count(L);

  BivariateEsm out;
  out.cross_loading = cross_loading;
  out.forcing = config.forcing.empty() ? historical_forcing(config.num_years)
                                       : config.forcing;
  EXACLIM_CHECK(static_cast<index_t>(out.forcing.size()) >= config.num_years,
                "forcing trajectory shorter than num_years");
  out.primary = ClimateDataset(grid, num_steps, num_ensembles, tau);
  out.secondary = ClimateDataset(grid, num_steps, num_ensembles, tau);

  // Shared spectrum/persistence setup (same scheme as the univariate
  // generator).
  std::vector<double> c_l(static_cast<std::size_t>(L));
  double field_var = 0.0;
  for (index_t l = 0; l < L; ++l) {
    c_l[static_cast<std::size_t>(l)] =
        std::pow(1.0 + static_cast<double>(l), -config.spectrum_alpha);
    field_var +=
        (2.0 * l + 1.0) / (4.0 * kPi) * c_l[static_cast<std::size_t>(l)];
  }
  const double spectrum_scale =
      config.weather_scale * config.weather_scale / field_var;
  for (auto& value : c_l) value *= spectrum_scale;
  std::vector<double> phi_l(static_cast<std::size_t>(L));
  for (index_t l = 0; l < L; ++l) {
    phi_l[static_cast<std::size_t>(l)] =
        0.8 * std::pow(1.0 + static_cast<double>(l), -0.3);
  }

  const sht::SHTPlan plan(L, grid);
  const index_t nlat = grid.nlat;
  const index_t nlon = grid.nlon;

  // Means: temperature-like for the primary; flat "1000 hPa" plus a zonal
  // jet-like pattern for the secondary.
  std::vector<double> base1(static_cast<std::size_t>(grid.num_points()));
  std::vector<double> base2(static_cast<std::size_t>(grid.num_points()));
  for (index_t i = 0; i < nlat; ++i) {
    const double theta = grid.colatitude(i);
    const double s2 = std::sin(theta) * std::sin(theta);
    for (index_t j = 0; j < nlon; ++j) {
      const double phi = grid.longitude(j);
      const std::size_t p = static_cast<std::size_t>(i * nlon + j);
      base1[p] = config.mean_pole_kelvin +
                 (config.mean_equator_kelvin - config.mean_pole_kelvin) * s2 +
                 config.anisotropy_kelvin * anisotropic_pattern(theta, phi);
      base2[p] = 1000.0 + 12.0 * std::cos(2.0 * theta) +
                 2.0 * anisotropic_pattern(theta, phi + 0.5);
    }
  }
  const double ortho = std::sqrt(std::max(0.0, 1.0 - cross_loading * cross_loading));
  const double secondary_scale = 5.0;  // hPa-ish amplitude

  common::Rng master(config.seed ^ 0xB1BA);
  for (index_t r = 0; r < num_ensembles; ++r) {
    common::Rng rng = master.split(static_cast<std::uint64_t>(r) + 1);
    auto draw_state = [&](std::vector<cplx>& state) {
      state.assign(static_cast<std::size_t>(n_coeff), cplx{0.0, 0.0});
      for (index_t l = 0; l < L; ++l) {
        const double cl = c_l[static_cast<std::size_t>(l)];
        state[static_cast<std::size_t>(sht::tri_index(l, 0))] =
            cplx{rng.normal(0.0, std::sqrt(cl)), 0.0};
        for (index_t m = 1; m <= l; ++m) {
          state[static_cast<std::size_t>(sht::tri_index(l, m))] =
              cplx{rng.normal(0.0, std::sqrt(cl / 2.0)),
                   rng.normal(0.0, std::sqrt(cl / 2.0))};
        }
      }
    };
    std::vector<cplx> z1;
    std::vector<cplx> z_indep;
    draw_state(z1);
    draw_state(z_indep);

    for (index_t t = 0; t < num_steps; ++t) {
      auto step_state = [&](std::vector<cplx>& state) {
        for (index_t l = 0; l < L; ++l) {
          const double phi_ar = phi_l[static_cast<std::size_t>(l)];
          const double cl = c_l[static_cast<std::size_t>(l)];
          const double innov_sd = std::sqrt(cl * (1.0 - phi_ar * phi_ar));
          auto& z0 = state[static_cast<std::size_t>(sht::tri_index(l, 0))];
          z0 = cplx{phi_ar * z0.real() + rng.normal(0.0, innov_sd), 0.0};
          for (index_t m = 1; m <= l; ++m) {
            auto& z = state[static_cast<std::size_t>(sht::tri_index(l, m))];
            const double half_sd = innov_sd / std::sqrt(2.0);
            z = cplx{phi_ar * z.real() + rng.normal(0.0, half_sd),
                     phi_ar * z.imag() + rng.normal(0.0, half_sd)};
          }
        }
      };
      step_state(z1);
      step_state(z_indep);

      std::vector<cplx> z2(static_cast<std::size_t>(n_coeff));
      for (std::size_t c = 0; c < z2.size(); ++c) {
        z2[c] = cross_loading * z1[c] + ortho * z_indep[c];
      }
      const auto weather1 = plan.synthesize(z1);
      const auto weather2 = plan.synthesize(z2);

      const index_t year = t / tau;
      const double x_year = out.forcing[static_cast<std::size_t>(year)];
      const double season_angle =
          kTwoPi * static_cast<double>(t % tau) / static_cast<double>(tau);
      auto f1 = out.primary.field(r, t);
      auto f2 = out.secondary.field(r, t);
      for (index_t i = 0; i < nlat; ++i) {
        const double theta = grid.colatitude(i);
        const double mu = std::cos(theta);
        for (index_t j = 0; j < nlon; ++j) {
          const std::size_t p = static_cast<std::size_t>(i * nlon + j);
          double v1 = base1[p] + config.warming_per_forcing * x_year;
          v1 += config.seasonal_amplitude * mu * std::cos(season_angle);
          v1 += weather1[p] + config.nugget_noise * rng.normal();
          f1[p] = v1;
          double v2 = base2[p];
          v2 += secondary_scale / config.weather_scale * weather2[p];
          v2 += config.nugget_noise * rng.normal();
          f2[p] = v2;
        }
      }
    }
  }
  return out;
}

}  // namespace exaclim::climate
