#include "climate/dataset.hpp"

#include <cstring>
#include <fstream>

#include "common/error.hpp"

namespace exaclim::climate {

namespace {
constexpr char kMagic[8] = {'E', 'X', 'A', 'C', 'L', 'I', 'M', '1'};
}

ClimateDataset::ClimateDataset(sht::GridShape grid, index_t num_steps,
                               index_t num_ensembles, index_t steps_per_year)
    : grid_(grid),
      num_steps_(num_steps),
      num_ensembles_(num_ensembles),
      steps_per_year_(steps_per_year) {
  EXACLIM_CHECK(grid.nlat >= 2 && grid.nlon >= 1, "degenerate grid");
  EXACLIM_CHECK(num_steps >= 1 && num_ensembles >= 1 && steps_per_year >= 1,
                "dataset dimensions must be >= 1");
  data_.assign(static_cast<std::size_t>(num_ensembles) *
                   static_cast<std::size_t>(num_steps) *
                   static_cast<std::size_t>(grid.num_points()),
               0.0);
}

double ClimateDataset::total_points() const {
  return static_cast<double>(num_ensembles_) *
         static_cast<double>(num_steps_) *
         static_cast<double>(grid_.num_points());
}

std::span<double> ClimateDataset::field(index_t ensemble, index_t step) {
  EXACLIM_CHECK(ensemble >= 0 && ensemble < num_ensembles_, "bad ensemble");
  EXACLIM_CHECK(step >= 0 && step < num_steps_, "bad time step");
  const std::size_t pts = static_cast<std::size_t>(grid_.num_points());
  return {data_.data() +
              (static_cast<std::size_t>(ensemble) *
                   static_cast<std::size_t>(num_steps_) +
               static_cast<std::size_t>(step)) *
                  pts,
          pts};
}

std::span<const double> ClimateDataset::field(index_t ensemble,
                                              index_t step) const {
  return const_cast<ClimateDataset*>(this)->field(ensemble, step);
}

std::vector<double> ClimateDataset::time_series(index_t ensemble, index_t lat,
                                                index_t lon) const {
  EXACLIM_CHECK(lat >= 0 && lat < grid_.nlat && lon >= 0 && lon < grid_.nlon,
                "grid point out of range");
  std::vector<double> out(static_cast<std::size_t>(num_steps_));
  for (index_t t = 0; t < num_steps_; ++t) {
    out[static_cast<std::size_t>(t)] =
        field(ensemble, t)[static_cast<std::size_t>(lat * grid_.nlon + lon)];
  }
  return out;
}

void ClimateDataset::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open for writing: " + path);
  out.write(kMagic, sizeof(kMagic));
  const index_t header[5] = {grid_.nlat, grid_.nlon, num_steps_,
                             num_ensembles_, steps_per_year_};
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  out.write(reinterpret_cast<const char*>(data_.data()),
            static_cast<std::streamsize>(data_.size() * sizeof(double)));
  if (!out) throw IoError("write failed: " + path);
}

ClimateDataset ClimateDataset::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open for reading: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw IoError("not an ExaClim dataset: " + path);
  }
  index_t header[5];
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  if (!in) throw IoError("truncated dataset header: " + path);
  ClimateDataset ds(sht::GridShape{header[0], header[1]}, header[2], header[3],
                    header[4]);
  in.read(reinterpret_cast<char*>(ds.data_.data()),
          static_cast<std::streamsize>(ds.data_.size() * sizeof(double)));
  if (!in) throw IoError("truncated dataset payload: " + path);
  return ds;
}

}  // namespace exaclim::climate
