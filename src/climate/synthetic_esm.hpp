// Synthetic Earth-System-Model ensemble generator (the ERA5 substitute).
//
// We cannot ship ERA5, so training data is generated with exactly the
// structural features the paper's statistical model targets (see DESIGN.md,
// substitution table):
//   * latitudinal climatology (warm equator, cold poles);
//   * land/sea-like *longitudinal anisotropy* via fixed low-order spherical
//     harmonics in the mean and in the stochastic scale sigma(theta, phi) —
//     this is what breaks axial symmetry and motivates the paper's full
//     anisotropic treatment;
//   * RF-driven warming trend with polar amplification (beta grows poleward);
//   * seasonal cycle with opposite hemispheric phase, plus a diurnal cycle
//     tied to local solar time when steps_per_day > 1 (phase proportional to
//     longitude);
//   * band-limited Gaussian weather: spherical-harmonic coefficients with a
//     power-law spectrum C_l ~ (1 + l)^{-alpha} evolving as AR(2) in time,
//     degree-dependent persistence (large scales persist longer);
//   * unresolved small-scale white noise (the epsilon / v^2 nugget).
//
// Because the truth lies inside (mean model, AR structure) and slightly
// outside (sigma-modulated covariance) the emulator's family, training
// exercises both the happy path and graceful misspecification.
#pragma once

#include "climate/dataset.hpp"
#include "climate/forcing.hpp"
#include "common/rng.hpp"

namespace exaclim::climate {

struct SyntheticEsmConfig {
  index_t band_limit = 16;       ///< spatial complexity of the truth
  sht::GridShape grid{17, 32};   ///< sampling grid (>= exactness bounds)
  index_t num_years = 4;
  index_t steps_per_year = 64;   ///< tau (e.g. 365 daily, 8760 hourly)
  index_t steps_per_day = 1;     ///< > 1 enables the diurnal cycle
  index_t num_ensembles = 2;
  std::uint64_t seed = 20240811; ///< arXiv date of the paper, why not

  double mean_equator_kelvin = 300.0;
  double mean_pole_kelvin = 245.0;
  double anisotropy_kelvin = 8.0;     ///< land/sea-like stationary pattern
  double warming_per_forcing = 1.2;   ///< K per (W/m^2), equatorial
  double polar_amplification = 2.0;   ///< multiplier at the poles
  double seasonal_amplitude = 12.0;   ///< K, mid-latitudes
  double diurnal_amplitude = 4.0;     ///< K, when steps_per_day > 1
  double weather_scale = 3.0;         ///< K, stochastic component
  double spectrum_alpha = 2.0;        ///< C_l ~ (1+l)^{-alpha}
  double nugget_noise = 0.3;          ///< K, white measurement noise
  /// Optional externally supplied forcing; defaults to historical_forcing.
  std::vector<double> forcing;
};

/// Generated ensemble plus the ground truth pieces tests compare against.
struct SyntheticEsm {
  ClimateDataset data;
  std::vector<double> forcing;            ///< annual RF actually used
  std::vector<double> true_trend_equator; ///< m_t at (equator, lon 0)
  double true_ar1 = 0.0;                  ///< AR(1) coeff of degree-1 weather
};

/// Generates the ensemble. Deterministic in config.seed.
SyntheticEsm generate_synthetic_esm(const SyntheticEsmConfig& config);

/// Two co-located variables whose stochastic components share weather: the
/// secondary variable's spectral weather is
///   z2 = loading * z1 + sqrt(1 - loading^2) * independent,
/// giving a known cross-variable correlation — the workload for the
/// multi-variate emulator extension (paper Section VI).
struct BivariateEsm {
  ClimateDataset primary;    ///< temperature-like (Kelvin)
  ClimateDataset secondary;  ///< pressure-anomaly-like (hPa)
  std::vector<double> forcing;
  double cross_loading = 0.0;
};

BivariateEsm generate_bivariate_esm(const SyntheticEsmConfig& config,
                                    double cross_loading = 0.7);

}  // namespace exaclim::climate
