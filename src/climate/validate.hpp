// Input screening for climate datasets, run before training touches the
// statistics layer. Malformed fields (NaN/Inf, out-of-physical-range cells,
// constant fields whose sigma would vanish) are reported as structured
// ValidationErrors naming the exact (ensemble, step, lat, lon) cells, or —
// in quarantine mode — masked and imputed from the surrounding field so a
// mostly-good dataset still trains, with the counts surfaced in TrainReport.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "climate/dataset.hpp"
#include "common/error.hpp"

namespace exaclim::climate {

enum class ValidationIssueKind : int {
  NonFinite = 0,     ///< NaN or Inf cell
  OutOfRange = 1,    ///< finite but outside [min_value, max_value]
  ConstantField = 2  ///< every cell of a field identical (sigma would be 0)
};

const char* to_string(ValidationIssueKind kind);

/// One flagged cell (or field, for ConstantField where lat/lon are -1).
struct ValidationIssue {
  ValidationIssueKind kind = ValidationIssueKind::NonFinite;
  index_t ensemble = -1;
  index_t step = -1;
  index_t lat = -1;
  index_t lon = -1;
  double value = 0.0;

  std::string describe() const;
};

/// Structured validation failure: carries per-cell issues (the first few, in
/// deterministic dataset order) plus the total flagged count.
class ValidationError : public Error {
 public:
  ValidationError(std::vector<ValidationIssue> issues, std::size_t total);

  const std::vector<ValidationIssue>& issues() const { return issues_; }
  std::size_t total_flagged() const { return total_; }

 private:
  static std::string format(const std::vector<ValidationIssue>& issues,
                            std::size_t total);
  std::vector<ValidationIssue> issues_;
  std::size_t total_;
};

struct ValidationOptions {
  /// Physical plausibility bounds. The defaults disable range screening
  /// (datasets are not always Kelvin — the multivariate demo trains a
  /// ~1000-unit variable); the CLI enables them via --valid-range.
  double min_value = -std::numeric_limits<double>::infinity();
  double max_value = std::numeric_limits<double>::infinity();
  /// With quarantine on, NaN/Inf/out-of-range cells are imputed from the
  /// mean of the field's valid cells instead of failing the run. Constant
  /// fields are always fatal — there is no cell-level repair for a field
  /// with no variance.
  bool quarantine = false;
  /// Issues retained (in deterministic order) for the error message.
  std::size_t max_reported = 8;
};

struct ValidationSummary {
  std::size_t non_finite = 0;
  std::size_t out_of_range = 0;
  std::size_t constant_fields = 0;
  std::size_t quarantined = 0;  ///< cells imputed (quarantine mode only)

  std::size_t flagged() const {
    return non_finite + out_of_range + constant_fields;
  }
};

/// Screens every field of `data`. Without quarantine, any flagged cell (or
/// constant field) throws ValidationError naming the first offenders and the
/// total count. With quarantine, flagged cells are imputed in place from the
/// field mean of valid cells and counted; a field that is constant, or whose
/// cells are all flagged, still throws. The scan order and the reported
/// issue order are deterministic (chunk-stable reduction over fields).
ValidationSummary validate_dataset(ClimateDataset& data,
                                   const ValidationOptions& opts = {});

/// Read-only screening: identical checks, but quarantine is not available —
/// any issue throws.
ValidationSummary validate_dataset(const ClimateDataset& data,
                                   const ValidationOptions& opts = {});

}  // namespace exaclim::climate
