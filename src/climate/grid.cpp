#include "climate/grid.hpp"

#include <cmath>

#include "common/error.hpp"

namespace exaclim::climate {

double band_limit_to_degrees(index_t band_limit) {
  EXACLIM_CHECK(band_limit >= 1, "band limit must be >= 1");
  return 180.0 / static_cast<double>(band_limit);
}

double band_limit_to_km(index_t band_limit) {
  return band_limit_to_degrees(band_limit) * kKmPerDegree;
}

index_t degrees_to_band_limit(double degrees) {
  EXACLIM_CHECK(degrees > 0.0, "resolution must be positive");
  return static_cast<index_t>(std::llround(180.0 / degrees));
}

sht::GridShape grid_for_band_limit(index_t band_limit) {
  EXACLIM_CHECK(band_limit >= 1, "band limit must be >= 1");
  return sht::GridShape{band_limit + 1, 2 * band_limit};
}

sht::GridShape era5_grid() { return sht::GridShape{721, 1440}; }

double latitude_degrees(const sht::GridShape& grid, index_t i) {
  return 90.0 - grid.colatitude(i) * 180.0 / kPi;
}

double longitude_degrees(const sht::GridShape& grid, index_t j) {
  return grid.longitude(j) * 180.0 / kPi;
}

}  // namespace exaclim::climate
