#include "climate/forcing.hpp"

#include <cmath>

#include "common/error.hpp"

namespace exaclim::climate {

std::vector<double> historical_forcing(index_t num_years) {
  EXACLIM_CHECK(num_years >= 1, "need at least one year");
  std::vector<double> x(static_cast<std::size_t>(num_years));
  const double n = static_cast<double>(num_years);
  for (index_t y = 0; y < num_years; ++y) {
    const double f = static_cast<double>(y) / n;  // fraction of the record
    // Quadratic anthropogenic growth 0.3 -> ~2.8 W/m^2.
    double v = 0.3 + 2.5 * f * f;
    // Volcanic dips (Agung/El Chichon/Pinatubo-like): sharp negative pulses
    // with two-year e-folding recovery.
    for (double center : {0.28, 0.55, 0.72}) {
      const double dy = (f - center) * n;  // years since eruption
      if (dy >= 0.0) v -= 2.0 * std::exp(-dy / 2.0);
    }
    x[static_cast<std::size_t>(y)] = v;
  }
  return x;
}

std::vector<double> scenario_forcing(index_t num_years, double start_level,
                                     double annual_increment) {
  EXACLIM_CHECK(num_years >= 1, "need at least one year");
  std::vector<double> x(static_cast<std::size_t>(num_years));
  for (index_t y = 0; y < num_years; ++y) {
    x[static_cast<std::size_t>(y)] =
        start_level + annual_increment * static_cast<double>(y);
  }
  return x;
}

}  // namespace exaclim::climate
