// Storage economics: the paper's "saving petabytes" headline.
//
// Raw ensemble storage grows as R * T * Nlat * Nlon values; the emulator
// replaces it with per-location trend/scale parameters, the diagonal VAR
// coefficients, and the Cholesky factor V of the L^2 x L^2 innovation
// covariance, from which arbitrarily many statistically consistent ensembles
// can be regenerated. This module quantifies both sides and prices them at
// NCAR's ~$45/TB/year (Section I).
#pragma once

#include "common/types.hpp"
#include "sht/sht.hpp"

namespace exaclim::climate {

struct StorageParams {
  sht::GridShape grid;
  index_t num_steps = 0;          ///< T
  index_t num_ensembles = 1;      ///< R stored by the archive
  index_t band_limit = 0;         ///< L of the emulator
  index_t ar_order = 3;           ///< P
  index_t harmonics = 5;          ///< K
  index_t bytes_per_value = 4;    ///< archives typically store fp32
  index_t emulator_bytes_per_value = 8;
  double usd_per_terabyte_year = 45.0;  ///< NCAR figure from the paper
  /// Store V in mixed precision? Fraction of V bytes relative to fp64
  /// (e.g. 0.3 for a DP/HP tile layout).
  double factor_compression = 1.0;
};

struct StorageReport {
  double raw_bytes = 0.0;
  double emulator_bytes = 0.0;
  double trend_bytes = 0.0;    ///< per-location parameters
  double var_bytes = 0.0;      ///< diagonal Phi_p
  double factor_bytes = 0.0;   ///< V (lower triangle)
  double savings_ratio = 0.0;  ///< raw / emulator
  double raw_usd_per_year = 0.0;
  double emulator_usd_per_year = 0.0;
};

/// Computes both sides of the ledger.
StorageReport storage_report(const StorageParams& params);

/// Reference archive sizes from the paper's introduction, for context rows
/// in the storage bench.
struct ArchiveReference {
  const char* name;
  double bytes;
};
inline constexpr ArchiveReference kArchiveSizes[] = {
    {"CMIP3", 40e12},          // 40 TB
    {"CMIP5", 2e15},           // 2 PB
    {"CMIP6 (ESGF)", 28e15},   // 28 PB
    {"NCAR CMIP6 output", 2e15},
    {"GISS CMIP6 output", 147e12},
};

/// Pretty byte formatting ("1.21 PB").
std::string format_bytes(double bytes);

}  // namespace exaclim::climate
