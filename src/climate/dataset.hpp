// In-memory spatio-temporal ensemble container + binary IO.
//
// Layout follows the paper's indexing y^(r)_t(theta_i, phi_j): ensembles
// outermost, then time, then a row-major (lat, lon) field. Values are surface
// temperature in Kelvin.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "sht/sht.hpp"

namespace exaclim::climate {

class ClimateDataset {
 public:
  ClimateDataset() = default;
  ClimateDataset(sht::GridShape grid, index_t num_steps, index_t num_ensembles,
                 index_t steps_per_year);

  const sht::GridShape& grid() const { return grid_; }
  index_t num_steps() const { return num_steps_; }
  index_t num_ensembles() const { return num_ensembles_; }
  index_t steps_per_year() const { return steps_per_year_; }
  index_t num_years() const {
    return (num_steps_ + steps_per_year_ - 1) / steps_per_year_;
  }
  /// Total data points R * T * Nlat * Nlon.
  double total_points() const;

  std::span<double> field(index_t ensemble, index_t step);
  std::span<const double> field(index_t ensemble, index_t step) const;

  /// Time series at one grid point for one ensemble (strided copy).
  std::vector<double> time_series(index_t ensemble, index_t lat,
                                  index_t lon) const;

  /// Flat storage (r-major, then t, then field).
  std::vector<double>& raw() { return data_; }
  const std::vector<double>& raw() const { return data_; }

  /// Simple binary format (header + little-endian doubles).
  void save(const std::string& path) const;
  static ClimateDataset load(const std::string& path);

 private:
  sht::GridShape grid_{};
  index_t num_steps_ = 0;
  index_t num_ensembles_ = 0;
  index_t steps_per_year_ = 1;
  std::vector<double> data_;
};

}  // namespace exaclim::climate
