// The storage headline: "saving petabytes" (Sections I and VI).
//
// Prices raw ensemble archives vs the trained emulator across the paper's
// operating points (0.25 degree hourly/daily ERA5-scale up to the 0.034
// degree target), using NCAR's $45/TB/year figure, with CMIP archive sizes
// from the introduction for context. Also demonstrates the savings concretely
// with a real trained model file vs its training data on disk.
#include <filesystem>

#include "bench_util.hpp"
#include "climate/grid.hpp"
#include "climate/storage_model.hpp"
#include "climate/synthetic_esm.hpp"
#include "core/emulator.hpp"
#include "core/serialize.hpp"

using namespace exaclim;

int main() {
  bench::print_header("Storage savings — raw archives vs trained emulator");

  std::printf("\nContext (paper, Section I):\n");
  for (const auto& ref : climate::kArchiveSizes) {
    std::printf("  %-22s %12s  ($%.0f/yr at $45/TB)\n", ref.name,
                climate::format_bytes(ref.bytes).c_str(),
                ref.bytes / 1e12 * 45.0);
  }

  struct Case {
    const char* name;
    index_t band_limit;
    index_t num_steps;
    index_t ensembles;
    double factor_compression;
  };
  const Case cases[] = {
      {"0.25deg daily 83y R=50", 720, 30295, 50, 1.0},
      {"0.25deg hourly 35y R=10", 720, 306600, 10, 1.0},
      {"0.25deg hourly 35y R=100", 720, 306600, 100, 0.25},
      {"0.07deg hourly 35y R=50", 2880, 306600, 50, 0.25},
      {"0.034deg hourly 35y R=50", 5219, 306600, 50, 0.25},
  };
  std::printf("\n%-26s %12s %12s %10s %14s\n", "scenario", "raw", "emulator",
              "ratio", "saved $/yr");
  for (const auto& c : cases) {
    climate::StorageParams p;
    p.grid = climate::grid_for_band_limit(c.band_limit);
    p.num_steps = c.num_steps;
    p.num_ensembles = c.ensembles;
    p.band_limit = c.band_limit;
    p.factor_compression = c.factor_compression;
    const auto r = climate::storage_report(p);
    std::printf("%-26s %12s %12s %9.1fx %14.0f\n", c.name,
                climate::format_bytes(r.raw_bytes).c_str(),
                climate::format_bytes(r.emulator_bytes).c_str(),
                r.savings_ratio, r.raw_usd_per_year - r.emulator_usd_per_year);
  }

  std::printf("\nBreakdown at the 0.034deg point:\n");
  {
    climate::StorageParams p;
    p.grid = climate::grid_for_band_limit(5219);
    p.num_steps = 306600;
    p.num_ensembles = 50;
    p.band_limit = 5219;
    p.factor_compression = 0.25;
    const auto r = climate::storage_report(p);
    std::printf("  trend/scale params %s | VAR coeffs %s | factor V %s\n",
                climate::format_bytes(r.trend_bytes).c_str(),
                climate::format_bytes(r.var_bytes).c_str(),
                climate::format_bytes(r.factor_bytes).c_str());
    std::printf("  petabytes saved: %.2f PB\n",
                (r.raw_bytes - r.emulator_bytes) / 1e15);
  }

  // Concrete: a real model file vs its training data.
  std::printf("\nConcrete (this machine):\n");
  {
    climate::SyntheticEsmConfig data_cfg;
    data_cfg.band_limit = 12;
    data_cfg.grid = {13, 24};
    data_cfg.num_years = 4;
    data_cfg.steps_per_year = 96;
    data_cfg.num_ensembles = 4;
    const auto esm = climate::generate_synthetic_esm(data_cfg);
    core::EmulatorConfig cfg;
    cfg.band_limit = 12;
    cfg.ar_order = 3;
    cfg.harmonics = 4;
    cfg.steps_per_year = 96;
    cfg.tile_size = 48;
    core::ClimateEmulator emulator(cfg);
    emulator.train(esm.data, esm.forcing);
    const std::string model_path = "/tmp/exaclim_bench_model.bin";
    const std::string data_path = "/tmp/exaclim_bench_data.bin";
    core::save_emulator(emulator, model_path);
    esm.data.save(data_path);
    const double mb = static_cast<double>(std::filesystem::file_size(model_path));
    const double db = static_cast<double>(std::filesystem::file_size(data_path));
    std::printf("  training data %s -> model file %s (%.1fx smaller), and\n"
                "  the model regenerates unlimited consistent members.\n",
                climate::format_bytes(db).c_str(),
                climate::format_bytes(mb).c_str(), db / mb);
    std::filesystem::remove(model_path);
    std::filesystem::remove(data_path);
  }
  return 0;
}
