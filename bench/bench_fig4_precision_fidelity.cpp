// Figure 4: daily data vs emulations under DP, DP/SP and DP/HP.
//
// The paper's claim: emulated temperature maps stay statistically consistent
// with the simulations regardless of which mixed-precision variant factors
// the innovation covariance. We train four emulators differing only in the
// Cholesky precision, emulate, and print per-variant consistency metrics
// plus the factorization residual (the numerical side of the same story).
#include "bench_util.hpp"
#include "climate/synthetic_esm.hpp"
#include "core/consistency.hpp"
#include "core/emulator.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/solve.hpp"
#include "stats/covariance.hpp"

using namespace exaclim;

int main() {
  bench::print_header(
      "Figure 4 — emulation fidelity across precision variants (daily)");

  const index_t tau = 96;  // "daily" cadence, compressed year
  climate::SyntheticEsmConfig data_cfg;
  data_cfg.band_limit = 16;
  data_cfg.grid = {17, 32};
  data_cfg.num_years = 4;
  data_cfg.steps_per_year = tau;
  data_cfg.num_ensembles = 2;
  const auto esm = climate::generate_synthetic_esm(data_cfg);

  std::printf("\n%-9s %12s %12s %10s %10s %10s %12s\n", "variant",
              "mean rRMSE", "SD rRMSE", "ACF MAD", "spec MAD", "pooled KS",
              "chol resid");
  for (linalg::PrecisionVariant v : linalg::kAllVariants) {
    core::EmulatorConfig cfg;
    cfg.band_limit = 16;
    cfg.ar_order = 3;
    cfg.harmonics = 5;
    cfg.steps_per_year = tau;
    cfg.cholesky_variant = v;
    cfg.tile_size = 64;
    core::ClimateEmulator emulator(cfg);
    emulator.train(esm.data, esm.forcing);
    const auto emu =
        emulator.emulate(esm.data.num_steps(), 2, esm.forcing, 1234);
    const auto report = core::evaluate_consistency(esm.data, emu, 16);

    // Residual of V V^T against the (reconstructed) covariance: quantifies
    // the precision loss itself.
    const auto& factor = emulator.cholesky_factor();
    const linalg::Matrix u_approx = linalg::matmul_nt(factor, factor);
    // Reference: DP factor of the same covariance comes from re-deriving it
    // with the DP variant; compare against that emulator's U.
    static linalg::Matrix u_ref;  // set on the DP pass (first in the list)
    if (v == linalg::PrecisionVariant::DP) u_ref = u_approx;
    double resid = 0.0;
    double norm = 0.0;
    for (index_t i = 0; i < u_ref.rows(); ++i) {
      for (index_t j = 0; j < u_ref.cols(); ++j) {
        const double d = u_approx(i, j) - u_ref(i, j);
        resid += d * d;
        norm += u_ref(i, j) * u_ref(i, j);
      }
    }
    std::printf("%-9s %12.4f %12.4f %10.4f %10.4f %10.4f %12.3e\n",
                linalg::variant_name(v).c_str(), report.mean_field_rel_rmse,
                report.sd_field_rel_rmse, report.acf_mad,
                report.spectrum_log10_mad, report.pooled.ks,
                std::sqrt(resid / (norm > 0.0 ? norm : 1.0)));
  }
  std::printf("\nPaper's conclusion: all variants produce statistically\n"
              "consistent emulations; precision loss appears only in the\n"
              "factor residual, not in the climate statistics.\n");
  return 0;
}
