// Future-work projection: CUDA-aware MPI on Frontier and Alps.
//
// The paper (Section V-C): "There is still room for further improvements on
// Frontier and Alps systems by leveraging their network interconnect using
// CUDA-aware MPI to mitigate data movement overheads. This requires
// additional support within PaRSEC and will be addressed in future work."
// The performance model encodes exactly that deficiency (host-staged,
// non-overlapped transfers); flipping the flag projects the upside of the
// promised fix.
#include "bench_util.hpp"
#include "perfmodel/calibration.hpp"
#include "perfmodel/cholesky_sim.hpp"

using namespace exaclim;

int main() {
  bench::print_header(
      "Future work — projected gains from CUDA-aware MPI (Section V-C)");

  std::printf("\n%-10s %7s %9s | %12s %14s %10s\n", "system", "nodes", "size",
              "as-paper PF", "cuda-aware PF", "gain");
  for (const auto& point : perfmodel::paper_fig8()) {
    perfmodel::SimConfig cfg;
    cfg.machine = perfmodel::machine_by_name(point.system);
    cfg.nodes = point.nodes;
    cfg.matrix_size = point.matrix_size;
    cfg.tile_size = 2048;
    cfg.variant = linalg::PrecisionVariant::DP_HP;
    const auto staged = perfmodel::simulate_cholesky(cfg);
    cfg.machine.gpu_aware_comm = true;  // the future-work fix
    const auto aware = perfmodel::simulate_cholesky(cfg);
    std::printf("%-10s %7lld %8.2fM | %12.1f %14.1f %9.2fx\n", point.system,
                static_cast<long long>(point.nodes), point.matrix_size / 1e6,
                staged.pflops, aware.pflops, aware.pflops / staged.pflops);
  }

  std::printf("\nHeadline projection: Frontier-9025 with CUDA-aware MPI\n");
  {
    perfmodel::SimConfig cfg;
    cfg.machine = perfmodel::frontier();
    cfg.nodes = 9025;
    cfg.matrix_size = 27.24e6;
    cfg.tile_size = 2048;
    cfg.variant = linalg::PrecisionVariant::DP_HP;
    cfg.machine.gpu_aware_comm = true;
    const auto r = perfmodel::simulate_cholesky(cfg);
    std::printf("  %.3f EFlop/s (paper achieved 0.976 EFlop/s host-staged)\n",
                r.pflops / 1e3);
  }
  std::printf("\nSummit/Leonardo rows gain nothing — their runs already used\n"
              "device-aware transfers, which is why the flag models only the\n"
              "two systems the paper singles out.\n");
  return 0;
}
