// Figure 5: sender-based conversion ("new") vs the receiver-based baseline
// of [34] ("old") on 128 Summit nodes, DP / DP/SP / DP/HP.
//
// Two reproductions:
//  (a) measured on this node: the real tile Cholesky with both conversion
//      placements — conversion counts and wall time;
//  (b) modelled at paper scale: the calibrated Summit model at 128 nodes
//      across the paper's matrix sizes (0.66M-1.27M), old = receiver
//      conversion + bandwidth-first collectives, new = sender + latency-
//      first, with the paper's speedups (1.15 / 1.06 / 1.53) alongside.
#include "bench_util.hpp"
#include "linalg/cholesky.hpp"
#include "perfmodel/calibration.hpp"
#include "perfmodel/cholesky_sim.hpp"
#include "runtime/tiled_cholesky_rt.hpp"

using namespace exaclim;
using linalg::PrecisionVariant;

int main() {
  bench::print_header("Figure 5 — sender- vs receiver-based conversion");

  // (a) Measured on this machine.
  std::printf("\nMeasured (this node, n = 2048, nb = 128):\n");
  std::printf("%-9s %14s %14s %14s %14s\n", "variant", "recv conv",
              "send conv", "recv time(s)", "send time(s)");
  const index_t n = 2048;
  const index_t nb = 128;
  const index_t nt = (n + nb - 1) / nb;
  const linalg::Matrix a = bench::decaying_spd(n, 80.0);
  for (PrecisionVariant v :
       {PrecisionVariant::DP, PrecisionVariant::DP_SP, PrecisionVariant::DP_HP}) {
    double conv[2];
    double secs[2];
    int idx = 0;
    for (auto placement : {linalg::ConversionPlacement::Receiver,
                           linalg::ConversionPlacement::Sender}) {
      auto tiled = linalg::TiledSymmetricMatrix::from_dense(
          a, nb, linalg::make_band_policy(nt, v));
      runtime::RtCholeskyOptions opt;
      opt.placement = placement;
      const auto result = runtime::cholesky_tiled_parallel(tiled, opt);
      conv[idx] = result.element_conversions;
      secs[idx] = result.run.seconds;
      ++idx;
    }
    std::printf("%-9s %14.0f %14.0f %14.3f %14.3f\n",
                linalg::variant_name(v).c_str(), conv[0], conv[1], secs[0],
                secs[1]);
  }

  // (b) Modelled at 128 Summit nodes, paper sizes.
  const auto anchors = perfmodel::paper_fig5();
  std::printf("\nModelled (Summit, 128 nodes / 768 V100s):\n");
  std::printf("%-9s %10s | %11s %11s %9s | %13s\n", "variant", "size",
              "old PF/s", "new PF/s", "speedup", "paper speedup");
  for (PrecisionVariant v :
       {PrecisionVariant::DP, PrecisionVariant::DP_SP, PrecisionVariant::DP_HP}) {
    for (double size : {0.66e6, 0.86e6, 1.06e6, 1.27e6}) {
      perfmodel::SimConfig cfg;
      cfg.machine = perfmodel::summit();
      cfg.nodes = 128;
      cfg.matrix_size = size;
      cfg.tile_size = 2048;
      cfg.variant = v;
      const auto fast = perfmodel::simulate_cholesky(cfg);
      cfg.sender_conversion = false;
      cfg.latency_first_collectives = false;
      const auto slow = perfmodel::simulate_cholesky(cfg);
      const double paper_speedup =
          v == PrecisionVariant::DP
              ? anchors.speedup_dp
              : (v == PrecisionVariant::DP_SP ? anchors.speedup_dp_sp
                                              : anchors.speedup_dp_hp);
      std::printf("%-9s %9.2fM | %11.2f %11.2f %9.2f | %13.2f\n",
                  linalg::variant_name(v).c_str(), size / 1e6, slow.pflops,
                  fast.pflops, fast.pflops / slow.pflops, paper_speedup);
    }
  }
  std::printf("\nShape check: DP/HP benefits most (paper 1.53x), DP and DP/SP\n"
              "see modest gains — matching the paper's mechanism: conversion\n"
              "volume and collective ordering matter most when tiles are fp16.\n");
  return 0;
}
