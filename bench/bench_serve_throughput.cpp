// Serving throughput and tail latency for the batched sampling service.
//
// Own main(): trains and freezes one small model, then sweeps client counts
// against a SamplingService and writes BENCH_serve.json — samples/sec plus
// p50/p99 end-to-end latency per client count, and a pressure scenario
// (tight queue + deadlines + slow-task injection) whose shed / deadline-miss
// / degraded counters prove every submitted request is accounted for.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "climate/synthetic_esm.hpp"
#include "common/fault.hpp"
#include "common/timer.hpp"
#include "core/emulator.hpp"
#include "core/serialize.hpp"
#include "serve/sampler.hpp"
#include "serve/service.hpp"

namespace {

using namespace exaclim;

std::string freeze_model() {
  climate::SyntheticEsmConfig data_cfg;
  data_cfg.band_limit = 16;
  data_cfg.grid = {17, 32};
  data_cfg.num_years = 2;
  data_cfg.steps_per_year = 64;
  data_cfg.num_ensembles = 2;
  const auto esm = climate::generate_synthetic_esm(data_cfg);

  core::EmulatorConfig cfg;
  cfg.band_limit = 16;
  cfg.ar_order = 2;
  cfg.harmonics = 3;
  cfg.steps_per_year = 64;
  cfg.tile_size = 64;
  core::ClimateEmulator emulator(cfg);
  emulator.train(esm.data, esm.forcing);

  std::string path = "bench_serve_model.bin";
  if (const char* tmp = std::getenv("TMPDIR")) {
    path = std::string(tmp) + "/" + path;
  }
  core::save_emulator(emulator, path, core::FactorStorage::FP64);
  return path;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// One throughput point: `clients` threads each submit `per_client`
/// requests and block on the future; latency is submit-to-result.
std::string run_point(const core::FrozenModel& model, int clients,
                      int per_client) {
  serve::ServiceOptions options;
  options.queue_depth = 256;
  options.max_batch = 16;
  options.sampler.seed = 42;
  options.sampler.tile = 64;
  serve::SamplingService service(model, options);

  std::mutex lat_mu;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(static_cast<std::size_t>(clients * per_client));

  common::Timer wall;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      std::vector<double> local;
      local.reserve(static_cast<std::size_t>(per_client));
      for (int i = 0; i < per_client; ++i) {
        serve::SampleRequest req;
        req.request_id = static_cast<std::uint64_t>(c) * 1000000ull +
                         static_cast<std::uint64_t>(i);
        const auto t0 = std::chrono::steady_clock::now();
        try {
          service.submit(req).get();
        } catch (const Error&) {
          continue;  // shed under extreme pressure; excluded from latency
        }
        const auto t1 = std::chrono::steady_clock::now();
        local.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
      std::lock_guard<std::mutex> lock(lat_mu);
      latencies_ms.insert(latencies_ms.end(), local.begin(), local.end());
    });
  }
  for (auto& w : workers) w.join();
  const double seconds = wall.seconds();
  service.drain();
  const auto counters = service.counters();

  std::sort(latencies_ms.begin(), latencies_ms.end());
  const double p50 = percentile(latencies_ms, 0.50);
  const double p99 = percentile(latencies_ms, 0.99);
  const double rate =
      seconds > 0.0 ? static_cast<double>(counters.completed) / seconds : 0.0;

  std::printf(
      "  %2d client(s): %8.1f samples/s | p50 %7.3f ms | p99 %7.3f ms | "
      "completed %lld shed %lld missed %lld\n",
      clients, rate, p50, p99, static_cast<long long>(counters.completed),
      static_cast<long long>(counters.shed),
      static_cast<long long>(counters.deadline_missed));

  char row[512];
  std::snprintf(
      row, sizeof(row),
      "{\"scenario\": \"throughput\", \"clients\": %d, \"requests\": %d, "
      "\"samples_per_sec\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
      "\"submitted\": %lld, \"completed\": %lld, \"shed\": %lld, "
      "\"deadline_missed\": %lld, \"failed\": %lld, \"batches\": %lld, "
      "\"shrunk_batches\": %lld, \"degraded_batches\": %lld}",
      clients, clients * per_client, rate, p50, p99,
      static_cast<long long>(counters.submitted),
      static_cast<long long>(counters.completed),
      static_cast<long long>(counters.shed),
      static_cast<long long>(counters.deadline_missed),
      static_cast<long long>(counters.failed),
      static_cast<long long>(counters.batches),
      static_cast<long long>(counters.shrunk_batches),
      static_cast<long long>(counters.degraded_batches));
  return row;
}

/// Pressure scenario: tight queue, short deadlines, injected task latency.
/// The interesting output is the counter breakdown — every submitted
/// request must land in exactly one terminal bucket.
std::string run_pressure(const core::FrozenModel& model) {
  common::FaultInjector::instance().arm(
      common::FaultPlan::parse("seed=11;slow-task=0.6;slow-ms=15"));

  serve::ServiceOptions options;
  options.queue_depth = 8;
  options.max_batch = 4;
  options.deadline_ms = 40.0;
  options.sampler.seed = 42;
  options.sampler.tile = 64;
  serve::SamplingService service(model, options);

  const int clients = 4;
  const int per_client = 32;
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      for (int i = 0; i < per_client; ++i) {
        serve::SampleRequest req;
        req.request_id = static_cast<std::uint64_t>(c) * 1000000ull +
                         static_cast<std::uint64_t>(i);
        try {
          service.submit(req).get();
        } catch (const Error&) {
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  service.drain();
  common::FaultInjector::instance().disarm();

  const auto counters = service.counters();
  const long long accounted =
      static_cast<long long>(counters.completed + counters.shed +
                             counters.deadline_missed + counters.failed);
  std::printf(
      "  pressure: submitted %lld -> completed %lld shed %lld missed %lld "
      "failed %lld (accounted %lld) | shrunk %lld degraded %lld\n",
      static_cast<long long>(counters.submitted),
      static_cast<long long>(counters.completed),
      static_cast<long long>(counters.shed),
      static_cast<long long>(counters.deadline_missed),
      static_cast<long long>(counters.failed), accounted,
      static_cast<long long>(counters.shrunk_batches),
      static_cast<long long>(counters.degraded_batches));
  if (accounted != static_cast<long long>(counters.submitted)) {
    std::fprintf(stderr, "*** accounting invariant violated\n");
    std::exit(1);
  }

  char row[512];
  std::snprintf(
      row, sizeof(row),
      "{\"scenario\": \"pressure\", \"clients\": %d, \"requests\": %d, "
      "\"faults\": \"slow-task=0.6;slow-ms=15\", \"deadline_ms\": 40, "
      "\"queue_depth\": 8, \"submitted\": %lld, \"completed\": %lld, "
      "\"shed\": %lld, \"deadline_missed\": %lld, \"failed\": %lld, "
      "\"shrunk_batches\": %lld, \"degraded_batches\": %lld, "
      "\"accounted\": %s}",
      clients, clients * per_client,
      static_cast<long long>(counters.submitted),
      static_cast<long long>(counters.completed),
      static_cast<long long>(counters.shed),
      static_cast<long long>(counters.deadline_missed),
      static_cast<long long>(counters.failed),
      static_cast<long long>(counters.shrunk_batches),
      static_cast<long long>(counters.degraded_batches),
      accounted == static_cast<long long>(counters.submitted) ? "true"
                                                              : "false");
  return row;
}

}  // namespace

int main() {
  exaclim::bench::print_header(
      "Serving throughput: batched sampling service");
  const std::string model_path = freeze_model();
  const core::FrozenModel model(model_path);
  std::printf("frozen model: factor dim %lld\n",
              static_cast<long long>(model.factor_dim()));

  exaclim::bench::JsonBench out;
  for (const int clients : {1, 2, 4, 8}) {
    out.add(run_point(model, clients, 64));
  }
  out.add(run_pressure(model));

  const unsigned hc = std::thread::hardware_concurrency();
  const bool degraded = hc <= 1;
  if (degraded) {
    std::fprintf(stderr,
                 "*** WARNING: hardware_concurrency == %u — 1-core "
                 "container; latency numbers are not comparable to "
                 "multi-core runs; meta carries \"degraded_env\": true.\n",
                 hc);
  }
  char meta[256];
  std::snprintf(meta, sizeof(meta),
                "{\"bench\": \"serve_throughput\", "
                "\"hardware_concurrency\": %u, \"degraded_env\": %s, "
                "\"factor_dim\": %lld, \"max_batch\": 16}",
                hc, degraded ? "true" : "false",
                static_cast<long long>(model.factor_dim()));
  if (out.write("BENCH_serve.json", meta)) {
    std::printf("wrote BENCH_serve.json\n");
  }
  std::remove(model_path.c_str());
  return 0;
}
