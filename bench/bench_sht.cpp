// Measured SHT performance: forward analysis, inverse synthesis, plan
// construction (Wigner/Legendre precomputation), and the O(L^3)-per-slot
// scaling claim of Section III-A.2.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "sht/packing.hpp"
#include "sht/sht.hpp"

namespace {

using namespace exaclim;
using namespace exaclim::sht;

std::vector<cplx> random_coeffs(index_t band_limit, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<cplx> c(static_cast<std::size_t>(tri_count(band_limit)));
  for (index_t l = 0; l < band_limit; ++l) {
    c[static_cast<std::size_t>(tri_index(l, 0))] = {rng.normal(), 0.0};
    for (index_t m = 1; m <= l; ++m) {
      c[static_cast<std::size_t>(tri_index(l, m))] = {rng.normal(),
                                                      rng.normal()};
    }
  }
  return c;
}

void BM_ShtAnalyze(benchmark::State& state) {
  const index_t L = state.range(0);
  const GridShape grid{L + 1, 2 * L};
  const SHTPlan plan(L, grid);
  const auto field = plan.synthesize(random_coeffs(L, 1));
  for (auto _ : state) {
    auto coeffs = plan.analyze(field);
    benchmark::DoNotOptimize(coeffs.data());
  }
  // O(L^3) useful work per slot.
  state.counters["L^3/s"] = benchmark::Counter(
      static_cast<double>(L) * L * L * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShtAnalyze)->Arg(16)->Arg(32)->Arg(64)->Arg(96)->Arg(128);

void BM_ShtSynthesize(benchmark::State& state) {
  const index_t L = state.range(0);
  const GridShape grid{L + 1, 2 * L};
  const SHTPlan plan(L, grid);
  const auto coeffs = random_coeffs(L, 2);
  for (auto _ : state) {
    auto field = plan.synthesize(coeffs);
    benchmark::DoNotOptimize(field.data());
  }
  state.counters["L^3/s"] = benchmark::Counter(
      static_cast<double>(L) * L * L * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShtSynthesize)->Arg(16)->Arg(32)->Arg(64)->Arg(96)->Arg(128);

void BM_ShtPlanConstruction(benchmark::State& state) {
  // Paper Section III-A.2: pre-compute Wigner/Legendre once, amortized over
  // all T temporal observations.
  const index_t L = state.range(0);
  for (auto _ : state) {
    SHTPlan plan(L, GridShape{L + 1, 2 * L});
    benchmark::DoNotOptimize(&plan);
  }
}
BENCHMARK(BM_ShtPlanConstruction)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_FftEra5Longitude(benchmark::State& state) {
  // The 1440-point longitude FFT of an ERA5 row (non-power-of-two).
  const auto plan = fft::get_plan(1440);
  std::vector<cplx> row(1440);
  common::Rng rng(3);
  for (auto& v : row) v = {rng.normal(), 0.0};
  for (auto _ : state) {
    auto copy = row;
    plan->forward(copy.data());
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_FftEra5Longitude);

void BM_PackUnpack(benchmark::State& state) {
  const index_t L = state.range(0);
  const auto coeffs = random_coeffs(L, 4);
  for (auto _ : state) {
    auto packed = pack_real(L, coeffs);
    auto back = unpack_real(L, packed);
    benchmark::DoNotOptimize(back.data());
  }
}
BENCHMARK(BM_PackUnpack)->Arg(32)->Arg(128);

}  // namespace
