// Measured SHT performance: forward analysis, inverse synthesis, plan
// construction (Wigner/Legendre precomputation), and the O(L^3)-per-slot
// scaling claim of Section III-A.2.
//
// Default invocation runs the quick bench and writes BENCH_sht.json (the
// perf trajectory future PRs regress against), including a speedup column
// against the brute-force analyze_reference oracle at small L; pass
// --gbench to additionally run the full Google-benchmark suite below.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <thread>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/topology.hpp"
#include "fft/fft.hpp"
#include "linalg/kernels.hpp"
#include "sht/packing.hpp"
#include "sht/sht.hpp"

namespace {

using namespace exaclim;
using namespace exaclim::sht;

std::vector<cplx> random_coeffs(index_t band_limit, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<cplx> c(static_cast<std::size_t>(tri_count(band_limit)));
  for (index_t l = 0; l < band_limit; ++l) {
    c[static_cast<std::size_t>(tri_index(l, 0))] = {rng.normal(), 0.0};
    for (index_t m = 1; m <= l; ++m) {
      c[static_cast<std::size_t>(tri_index(l, m))] = {rng.normal(),
                                                      rng.normal()};
    }
  }
  return c;
}

void BM_ShtAnalyze(benchmark::State& state) {
  const index_t L = state.range(0);
  const GridShape grid{L + 1, 2 * L};
  const SHTPlan plan(L, grid);
  const auto field = plan.synthesize(random_coeffs(L, 1));
  for (auto _ : state) {
    auto coeffs = plan.analyze(field);
    benchmark::DoNotOptimize(coeffs.data());
  }
  // O(L^3) useful work per slot.
  state.counters["L^3/s"] = benchmark::Counter(
      static_cast<double>(L) * L * L * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShtAnalyze)->Arg(16)->Arg(32)->Arg(64)->Arg(96)->Arg(128);

void BM_ShtSynthesize(benchmark::State& state) {
  const index_t L = state.range(0);
  const GridShape grid{L + 1, 2 * L};
  const SHTPlan plan(L, grid);
  const auto coeffs = random_coeffs(L, 2);
  for (auto _ : state) {
    auto field = plan.synthesize(coeffs);
    benchmark::DoNotOptimize(field.data());
  }
  state.counters["L^3/s"] = benchmark::Counter(
      static_cast<double>(L) * L * L * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShtSynthesize)->Arg(16)->Arg(32)->Arg(64)->Arg(96)->Arg(128);

void BM_ShtPlanConstruction(benchmark::State& state) {
  // Paper Section III-A.2: pre-compute Wigner/Legendre once, amortized over
  // all T temporal observations.
  const index_t L = state.range(0);
  for (auto _ : state) {
    SHTPlan plan(L, GridShape{L + 1, 2 * L});
    benchmark::DoNotOptimize(&plan);
  }
}
BENCHMARK(BM_ShtPlanConstruction)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_FftEra5Longitude(benchmark::State& state) {
  // The 1440-point longitude FFT of an ERA5 row (non-power-of-two).
  const auto plan = fft::get_plan(1440);
  std::vector<cplx> row(1440);
  common::Rng rng(3);
  for (auto& v : row) v = {rng.normal(), 0.0};
  for (auto _ : state) {
    auto copy = row;
    plan->forward(copy.data());
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_FftEra5Longitude);

void BM_PackUnpack(benchmark::State& state) {
  const index_t L = state.range(0);
  const auto coeffs = random_coeffs(L, 4);
  for (auto _ : state) {
    auto packed = pack_real(L, coeffs);
    auto back = unpack_real(L, packed);
    benchmark::DoNotOptimize(back.data());
  }
}
BENCHMARK(BM_PackUnpack)->Arg(32)->Arg(128);

// --- BENCH_sht.json quick bench ---------------------------------------------

void write_sht_json() {
  using exaclim::bench::time_op;
  exaclim::bench::JsonBench out;
  for (index_t L : {16, 32, 64, 96, 128}) {
    const GridShape grid{L + 1, 2 * L};
    const SHTPlan plan(L, grid);
    const auto coeffs = random_coeffs(L, 1);
    const auto field = plan.synthesize(coeffs);

    const double ta = time_op([&] {
      auto c = plan.analyze(field);
      benchmark::DoNotOptimize(c.data());
    });
    const double ts = time_op([&] {
      auto f = plan.synthesize(coeffs);
      benchmark::DoNotOptimize(f.data());
    });
    // Brute-force least-squares oracle: O(L^6) solve, only feasible tiny.
    double tref = 0.0;
    if (L <= 16) {
      tref = time_op(
          [&] {
            auto c = analyze_reference(L, grid, field);
            benchmark::DoNotOptimize(c.data());
          },
          0.2, 1);
    }
    const double l3 = static_cast<double>(L) * L * L;
    char ref_cols[128] = "";
    if (tref > 0.0) {
      std::snprintf(ref_cols, sizeof(ref_cols),
                    ", \"ref_ms\": %.4f, \"speedup_vs_ref\": %.2f",
                    tref * 1e3, tref / ta);
    }
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"L\": %lld, \"nlat\": %lld, \"nlon\": %lld, "
        "\"analyze_ms\": %.4f, \"synthesize_ms\": %.4f, "
        "\"analyze_l3_per_s\": %.4g, \"synthesize_l3_per_s\": %.4g%s}",
        static_cast<long long>(L), static_cast<long long>(grid.nlat),
        static_cast<long long>(grid.nlon), ta * 1e3, ts * 1e3, l3 / ta,
        l3 / ts, ref_cols);
    out.add(buf);
  }
  const auto& team = exaclim::common::WorkerTeam::instance();
  const auto& topo = exaclim::common::Topology::instance();
  const unsigned hc = std::thread::hardware_concurrency();
  const bool degraded = hc <= 1;
  if (degraded) {
    std::fprintf(stderr,
                 "*** WARNING: hardware_concurrency == %u (1-core "
                 "container?) — rates below are not comparable to "
                 "multi-core runs; meta carries \"degraded_env\": true.\n",
                 hc);
  }
  const linalg::KernelTuning tuning = linalg::active_tuning();
  char meta[512];
  std::snprintf(
      meta, sizeof(meta),
      "{\"bench\": \"sht\", \"hardware_concurrency\": %u, "
      "\"degraded_env\": %s, \"threads\": %u, \"pinned\": %d, "
      "\"numa_nodes\": %u, \"l1d_bytes\": %zu, \"l2_bytes\": %zu, "
      "\"l3_bytes\": %zu, \"tune_mode\": \"%s\", "
      "\"f64_kc\": %lld, \"f64_mc\": %lld, \"f64_nc\": %lld, "
      "\"f32_kc\": %lld, \"f32_mc\": %lld, \"f32_nc\": %lld}",
      hc, degraded ? "true" : "false", team.max_participants(),
      team.pinned() ? 1 : 0, topo.num_nodes(), tuning.l1d_bytes,
      tuning.l2_bytes, tuning.l3_bytes,
      linalg::tune_mode_name(tuning.mode).c_str(),
      static_cast<long long>(tuning.f64.kc),
      static_cast<long long>(tuning.f64.mc),
      static_cast<long long>(tuning.f64.nc),
      static_cast<long long>(tuning.f32.kc),
      static_cast<long long>(tuning.f32.mc),
      static_cast<long long>(tuning.f32.nc));
  if (out.write("BENCH_sht.json", meta)) {
    std::printf("wrote BENCH_sht.json\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool gbench = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gbench") == 0) gbench = true;
  }
  write_sht_json();
  if (gbench) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return 0;
}
