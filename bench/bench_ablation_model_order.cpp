// Ablation: statistical model orders — VAR order P and trend harmonics K.
//
// The paper fixes P = 3 and K = 5 "based on existing related research".
// This bench justifies those choices on data: Ljung-Box whiteness of the
// innovation residuals vs P (underfitting leaves structure), and trend
// residual scale vs K (too few harmonics leak the seasonal cycle into the
// stochastic component).
#include "bench_util.hpp"
#include "climate/synthetic_esm.hpp"
#include "core/consistency.hpp"
#include "core/emulator.hpp"
#include "sht/packing.hpp"
#include "stats/ar.hpp"
#include "stats/ljung_box.hpp"
#include "stats/trend.hpp"

using namespace exaclim;

int main() {
  bench::print_header("Ablation — VAR order P and trend harmonics K");

  const index_t tau = 96;
  climate::SyntheticEsmConfig data_cfg;
  data_cfg.band_limit = 12;
  data_cfg.grid = {13, 24};
  data_cfg.num_years = 5;
  data_cfg.steps_per_year = tau;
  data_cfg.num_ensembles = 2;
  const auto esm = climate::generate_synthetic_esm(data_cfg);

  // ---- P: whiteness of innovations + end-to-end consistency --------------
  std::printf("\nVAR order P (paper uses 3):\n");
  std::printf("%4s %18s %14s %12s\n", "P", "white coeffs (%)", "mean p-value",
              "ACF MAD");
  for (index_t p : {1, 2, 3, 5}) {
    core::EmulatorConfig cfg;
    cfg.band_limit = 12;
    cfg.ar_order = p;
    cfg.harmonics = 4;
    cfg.steps_per_year = tau;
    cfg.tile_size = 48;
    core::ClimateEmulator emulator(cfg);
    emulator.train(esm.data, esm.forcing);

    // Whiteness of each coefficient's residuals on ensemble 0: re-derive
    // residual series from the fitted AR models and the training data's
    // coefficients is involved; instead simulate the fitted AR and test the
    // fit directly per coefficient via the emulator's innovations proxy:
    // refit on fresh AR residual checks using the stored models.
    // Practical check: emulate, then measure ACF agreement with training.
    const auto emu = emulator.emulate(esm.data.num_steps(), 2, esm.forcing, 5);
    const auto report = core::evaluate_consistency(esm.data, emu, 12);

    // Whiteness: for a probe set of packed coefficients, run the training
    // series through the fitted AR and Ljung-Box the residuals.
    index_t white = 0;
    index_t total = 0;
    double p_sum = 0.0;
    const sht::SHTPlan plan(12, esm.data.grid());
    // Build coefficient series for ensemble 0 (standardization is monotone
    // and does not change whiteness structure materially at this scale).
    const index_t T = esm.data.num_steps();
    std::vector<std::vector<double>> series(
        static_cast<std::size_t>(sh_coeff_count(12)),
        std::vector<double>(static_cast<std::size_t>(T)));
    for (index_t t = 0; t < T; ++t) {
      const auto field = esm.data.field(0, t);
      const auto coeffs =
          plan.analyze(std::vector<double>(field.begin(), field.end()));
      const auto packed = sht::pack_real(12, coeffs);
      for (std::size_t c = 0; c < packed.size(); ++c) {
        series[c][static_cast<std::size_t>(t)] = packed[c];
      }
    }
    for (index_t c = 1; c < sh_coeff_count(12); c += 9) {
      const stats::ArModel model = stats::fit_ar(series[static_cast<std::size_t>(c)], p);
      const auto resid =
          stats::ar_residuals(model, series[static_cast<std::size_t>(c)]);
      const auto lb = stats::ljung_box(resid, 10, p);
      white += lb.white() ? 1 : 0;
      p_sum += lb.p_value;
      ++total;
    }
    std::printf("%4lld %17.0f%% %14.3f %12.4f\n", static_cast<long long>(p),
                100.0 * static_cast<double>(white) / static_cast<double>(total),
                p_sum / static_cast<double>(total), report.acf_mad);
  }

  // ---- K: seasonal leakage into the stochastic component -----------------
  std::printf("\nTrend harmonics K (paper uses 5):\n");
  std::printf("%4s %16s %18s\n", "K", "mean sigma (K)", "consistency (mean)");
  for (index_t k : {0, 1, 2, 5}) {
    core::EmulatorConfig cfg;
    cfg.band_limit = 12;
    cfg.ar_order = 3;
    cfg.harmonics = k;
    cfg.steps_per_year = tau;
    cfg.tile_size = 48;
    core::ClimateEmulator emulator(cfg);
    emulator.train(esm.data, esm.forcing);
    double sigma_sum = 0.0;
    for (const auto& tm : emulator.trend_models()) sigma_sum += tm.sigma;
    const auto emu = emulator.emulate(esm.data.num_steps(), 2, esm.forcing, 6);
    const auto report = core::evaluate_consistency(esm.data, emu, 12);
    std::printf("%4lld %16.3f %18.4f\n", static_cast<long long>(k),
                sigma_sum / static_cast<double>(emulator.trend_models().size()),
                report.mean_field_rel_rmse);
  }
  std::printf("\nReading: residual sigma drops sharply once K covers the\n"
              "seasonal harmonics; innovations whiten by P = 2-3 — the\n"
              "paper's P = 3, K = 5 sit on the flat part of both curves.\n");
  return 0;
}
