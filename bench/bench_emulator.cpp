// End-to-end emulator throughput: training and emulation rates by band
// limit, and emulation points-per-second (the "generate a year in seconds"
// claim of the introduction, at laptop scale).
#include <benchmark/benchmark.h>

#include "climate/synthetic_esm.hpp"
#include "core/emulator.hpp"

namespace {

using namespace exaclim;

climate::SyntheticEsm make_data(index_t band_limit, index_t tau,
                                index_t years) {
  climate::SyntheticEsmConfig cfg;
  cfg.band_limit = band_limit;
  cfg.grid = {band_limit + 1, 2 * band_limit};
  cfg.num_years = years;
  cfg.steps_per_year = tau;
  cfg.num_ensembles = 2;
  return climate::generate_synthetic_esm(cfg);
}

core::EmulatorConfig make_config(index_t band_limit, index_t tau) {
  core::EmulatorConfig cfg;
  cfg.band_limit = band_limit;
  cfg.ar_order = 3;
  cfg.harmonics = 4;
  cfg.steps_per_year = tau;
  cfg.tile_size = 64;
  cfg.cholesky_variant = linalg::PrecisionVariant::DP_HP;
  return cfg;
}

void BM_Train(benchmark::State& state) {
  const index_t L = state.range(0);
  const index_t tau = 48;
  const auto esm = make_data(L, tau, 3);
  for (auto _ : state) {
    core::ClimateEmulator emulator(make_config(L, tau));
    emulator.train(esm.data, esm.forcing);
    benchmark::DoNotOptimize(&emulator);
  }
  state.counters["points/s"] = benchmark::Counter(
      esm.data.total_points() * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.SetLabel("L=" + std::to_string(L));
}
BENCHMARK(BM_Train)->Arg(8)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

void BM_Emulate(benchmark::State& state) {
  const index_t L = state.range(0);
  const index_t tau = 48;
  const auto esm = make_data(L, tau, 3);
  core::ClimateEmulator emulator(make_config(L, tau));
  emulator.train(esm.data, esm.forcing);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const auto emu = emulator.emulate(esm.data.num_steps(), 1, esm.forcing,
                                      ++seed);
    benchmark::DoNotOptimize(emu.raw().data());
  }
  const double points = static_cast<double>(esm.data.num_steps()) *
                        esm.data.grid().num_points();
  state.counters["points/s"] = benchmark::Counter(
      points * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.SetLabel("L=" + std::to_string(L));
}
BENCHMARK(BM_Emulate)->Arg(8)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

void BM_SyntheticEsmGeneration(benchmark::State& state) {
  const index_t L = state.range(0);
  for (auto _ : state) {
    const auto esm = make_data(L, 48, 2);
    benchmark::DoNotOptimize(esm.data.raw().data());
  }
}
BENCHMARK(BM_SyntheticEsmGeneration)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
