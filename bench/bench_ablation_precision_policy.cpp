// Ablation: precision-assignment policy — DP band width, and band-based vs
// tile-centric (norm-adaptive, [47]) assignment.
//
// The design question behind DP/HP: how much double precision is actually
// needed near the diagonal, and does adapting to tile norms beat a fixed
// band? Measured factorization residual vs storage for both families on a
// covariance with realistic decay.
#include "common/error.hpp"
#include "bench_util.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/precision_policy.hpp"

using namespace exaclim;
using namespace exaclim::linalg;

int main() {
  bench::print_header("Ablation — precision policy (band width, adaptivity)");

  const index_t n = 1024;
  const index_t nb = 64;
  const index_t nt = (n + nb - 1) / nb;

  for (double length_scale : {16.0, 64.0, 256.0}) {
    const Matrix a = bench::decaying_spd(n, length_scale);
    std::printf("\nCorrelation length %.0f (of n = %lld):\n", length_scale,
                static_cast<long long>(n));
    std::printf("%-24s %12s %12s %10s\n", "policy", "residual", "storage MB",
                "DP frac");

    // Runs one policy; ill-conditioned matrices can lose positive
    // definiteness under fp16 rounding — report that instead of crashing
    // (it is the accuracy cliff this ablation is mapping).
    auto run_policy = [&](const char* label, PrecisionMap map) {
      auto tiled = TiledSymmetricMatrix::from_dense(a, nb, map);
      try {
        cholesky_tiled(tiled);
      } catch (const NumericalError&) {
        std::printf("%-24s %12s %12.2f %9.1f%%\n", label, "NOT PD",
                    map.storage_bytes(n, nb) / 1e6,
                    100.0 * map.fraction(Precision::FP64));
        return;
      }
      const Matrix l = tiled.to_dense(true);
      std::printf("%-24s %12.3e %12.2f %9.1f%%\n", label,
                  cholesky_residual(a, l), map.storage_bytes(n, nb) / 1e6,
                  100.0 * map.fraction(Precision::FP64));
    };

    // Band policies with growing DP band, low precision fp16.
    for (index_t dp_band : {0, 1, 2, 4, 8}) {
      char label[64];
      std::snprintf(label, sizeof(label), "DP/HP band=%lld",
                    static_cast<long long>(dp_band));
      run_policy(label, make_band_policy(nt, PrecisionVariant::DP_HP, dp_band));
    }
    // Tile-centric adaptive policy at two threshold settings.
    for (const auto& [sp_t, hp_t] :
         {std::pair<double, double>{1e-1, 1e-2},
          std::pair<double, double>{1e-2, 1e-4}}) {
      char label[64];
      std::snprintf(label, sizeof(label), "tile-centric %.0e/%.0e", sp_t, hp_t);
      run_policy(label, make_tile_centric_policy(a, nb, sp_t, hp_t));
    }
  }
  std::printf("\nReading: with fast-decaying correlation the adaptive policy\n"
              "matches band accuracy at lower storage; with slow decay the\n"
              "band must widen (or thresholds tighten) — exactly the\n"
              "\"precision follows correlation strength\" design rule of the\n"
              "paper (Section I).\n");
  return 0;
}
