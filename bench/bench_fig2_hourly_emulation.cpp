// Figure 2: hourly simulations vs emulations, statistically consistent maps.
//
// The paper shows 24-hour ERA5 temperature maps beside emulator output for
// Jan 1 and Jun 1 2019. We regenerate the experiment on the synthetic ESM:
// train on hourly data, emulate the same days, and report the quantities the
// visual comparison encodes — spatial mean/SD per snapshot, pattern
// correlation of the climatology, pooled KS distance, and the diurnal
// harmonic amplitude — for simulation vs emulation.
#include <vector>

#include "bench_util.hpp"
#include "climate/synthetic_esm.hpp"
#include "core/consistency.hpp"
#include "core/emulator.hpp"
#include "stats/diagnostics.hpp"

using namespace exaclim;

int main() {
  bench::print_header("Figure 2 — hourly simulation vs emulation");

  const index_t steps_per_day = 24;
  const index_t days = 20;
  const index_t tau = steps_per_day * days;
  climate::SyntheticEsmConfig data_cfg;
  data_cfg.band_limit = 16;
  data_cfg.grid = {17, 32};
  data_cfg.num_years = 3;
  data_cfg.steps_per_year = tau;
  data_cfg.steps_per_day = steps_per_day;
  data_cfg.num_ensembles = 2;
  data_cfg.diurnal_amplitude = 5.0;
  const auto esm = climate::generate_synthetic_esm(data_cfg);

  core::EmulatorConfig cfg;
  cfg.band_limit = 16;
  cfg.ar_order = 3;
  cfg.harmonics = 5;
  cfg.steps_per_year = tau;
  cfg.cholesky_variant = linalg::PrecisionVariant::DP_SP;
  cfg.tile_size = 64;
  core::ClimateEmulator emulator(cfg);
  emulator.train(esm.data, esm.forcing);
  const auto emu = emulator.emulate(esm.data.num_steps(), 1, esm.forcing, 42);

  // Snapshot statistics for the two "days" (start and mid-year), hourly.
  for (const auto& [label, day0] :
       {std::pair<const char*, index_t>{"Jan-like day", 0},
        std::pair<const char*, index_t>{"Jun-like day", tau / 2}}) {
    std::printf("\n%s (24 hourly snapshots):\n", label);
    std::printf("%6s %12s %12s %12s %12s\n", "hour", "sim mean", "emu mean",
                "sim SD", "emu SD");
    for (index_t h = 0; h < steps_per_day; h += 4) {
      const auto sim = esm.data.field(0, tau + day0 + h);  // year 2
      const auto gen = emu.field(0, tau + day0 + h);
      const std::vector<double> sim_v(sim.begin(), sim.end());
      const std::vector<double> emu_v(gen.begin(), gen.end());
      std::printf("%6lld %12.2f %12.2f %12.2f %12.2f\n",
                  static_cast<long long>(h), stats::mean(sim_v),
                  stats::mean(emu_v), stats::standard_deviation(sim_v),
                  stats::standard_deviation(emu_v));
    }
  }

  // Pattern correlation of time-mean fields (the "maps look alike" claim).
  {
    const index_t np = esm.data.grid().num_points();
    std::vector<double> sim_mean(static_cast<std::size_t>(np), 0.0);
    std::vector<double> emu_mean(static_cast<std::size_t>(np), 0.0);
    for (index_t t = 0; t < esm.data.num_steps(); ++t) {
      const auto s = esm.data.field(0, t);
      const auto e = emu.field(0, t);
      for (index_t p = 0; p < np; ++p) {
        sim_mean[static_cast<std::size_t>(p)] += s[static_cast<std::size_t>(p)];
        emu_mean[static_cast<std::size_t>(p)] += e[static_cast<std::size_t>(p)];
      }
    }
    std::printf("\nClimatology pattern correlation (sim vs emu): %.4f\n",
                stats::correlation(sim_mean, emu_mean));
  }

  const auto report = core::evaluate_consistency(esm.data, emu, 16);
  std::printf("Pooled KS distance: %.4f | mean-field rel RMSE %.3f | "
              "SD-field rel RMSE %.3f | spectrum log10 MAD %.3f\n",
              report.pooled.ks, report.mean_field_rel_rmse,
              report.sd_field_rel_rmse, report.spectrum_log10_mad);
  std::printf("Verdict: emulations %s with simulations (paper: consistent)\n",
              report.consistent() ? "STATISTICALLY CONSISTENT" : "inconsistent");
  return 0;
}
