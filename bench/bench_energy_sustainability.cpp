// The sustainability claim: "a more sustainable swim lane to climate
// modeling" by moving flops to low-precision tensor kernels (Sections I and
// VI, with the energy angle of [35]).
//
// Energy of the covariance factorization per precision variant on each
// system, and the headline DP -> DP/HP energy saving at the paper's largest
// configurations.
#include "bench_util.hpp"
#include "perfmodel/calibration.hpp"
#include "perfmodel/energy.hpp"

using namespace exaclim;
using linalg::PrecisionVariant;

int main() {
  bench::print_header("Energy — mixed precision as the sustainable swim lane");

  std::printf("\nPer-variant energy, 1,024 nodes, Table-I matrix sizes:\n");
  std::printf("%-10s %-9s %10s %12s %12s %12s\n", "system", "variant",
              "time(s)", "energy (MJ)", "GF/W", "vs DP");
  for (const auto& row : perfmodel::paper_table1()) {
    const auto machine = perfmodel::machine_by_name(row.system);
    double dp_energy = 0.0;
    for (PrecisionVariant v : linalg::kAllVariants) {
      perfmodel::SimConfig cfg;
      cfg.machine = machine;
      cfg.nodes = 1024;
      cfg.matrix_size = row.matrix_size;
      cfg.tile_size = 2048;
      cfg.variant = v;
      const auto r = perfmodel::simulate_cholesky(cfg);
      const auto e = perfmodel::estimate_energy(machine, 1024, r);
      if (v == PrecisionVariant::DP) dp_energy = e.total_megajoules;
      std::printf("%-10s %-9s %10.1f %12.1f %12.2f %11.2fx\n", row.system,
                  linalg::variant_name(v).c_str(), r.seconds,
                  e.total_megajoules, e.gflops_per_watt,
                  dp_energy / e.total_megajoules);
    }
  }

  std::printf("\nHeadline runs (Fig. 8 points, DP/HP vs hypothetical DP):\n");
  std::printf("%-10s %7s %9s | %14s %14s %12s\n", "system", "nodes", "size",
              "DP energy MJ", "DP/HP energy", "saving");
  for (const auto& point : perfmodel::paper_fig8()) {
    const auto machine = perfmodel::machine_by_name(point.system);
    perfmodel::SimConfig cfg;
    cfg.machine = machine;
    cfg.nodes = point.nodes;
    cfg.matrix_size = point.matrix_size;
    cfg.tile_size = 2048;
    cfg.variant = PrecisionVariant::DP;
    const auto dp = perfmodel::simulate_cholesky(cfg);
    cfg.variant = PrecisionVariant::DP_HP;
    const auto hp = perfmodel::simulate_cholesky(cfg);
    const auto e_dp = perfmodel::estimate_energy(machine, point.nodes, dp);
    const auto e_hp = perfmodel::estimate_energy(machine, point.nodes, hp);
    std::printf("%-10s %7lld %8.2fM | %14.0f %14.0f %11.2fx\n", point.system,
                static_cast<long long>(point.nodes), point.matrix_size / 1e6,
                e_dp.total_megajoules, e_hp.total_megajoules,
                e_dp.total_megajoules / e_hp.total_megajoules);
  }
  std::printf("\n(1 MJ ~ 0.28 kWh; a 2-4x energy cut per factorization is\n"
              "what \"shifting to tensor-core kernels\" buys, before any of\n"
              "the storage-side savings.)\n");
  return 0;
}
