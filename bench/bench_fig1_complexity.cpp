// Figure 1: the emulator-cost landscape.
//
// Reprints the paper's comparison of axially symmetric O(L^3 T + L^4) vs
// longitudinally anisotropic O(L^4 T + L^6) design cost across spatial
// resolutions (500 km .. 3.5 km) and temporal resolutions (annual .. hourly),
// and verifies the headline claims: the 245,280x resolution advance and the
// positions of prior work vs this work on the plane. Also validates the cost
// exponents against measured training times of the real pipeline at small L.
#include <vector>

#include "bench_util.hpp"
#include "climate/grid.hpp"
#include "climate/synthetic_esm.hpp"
#include "common/timer.hpp"
#include "core/complexity.hpp"
#include "core/emulator.hpp"

using namespace exaclim;

int main() {
  bench::print_header(
      "Figure 1 — emulator design cost vs spatio-temporal resolution");

  const double years = 83.0;

  std::printf("\nDesign cost in flops (83-year record):\n");
  std::printf("%10s %8s | %12s %12s %12s %12s\n", "res (km)", "L",
              "axi-annual", "axi-daily", "aniso-annual", "aniso-hourly");
  for (double km : {500.0, 200.0, 100.0, 25.0, 12.5, 6.25, 3.5}) {
    const index_t band_limit =
        climate::degrees_to_band_limit(km / climate::kKmPerDegree);
    std::printf("%10.1f %8lld | %12.3e %12.3e %12.3e %12.3e\n", km,
                static_cast<long long>(band_limit),
                core::axisymmetric_design_flops(band_limit, years),
                core::axisymmetric_design_flops(band_limit, years * 365.0),
                core::anisotropic_design_flops(band_limit, years),
                core::anisotropic_design_flops(band_limit, years * 8760.0));
  }

  std::printf("\nLandscape positions (paper's review):\n");
  struct PriorWork {
    const char* label;
    double km;
    index_t steps_per_year;
    bool anisotropic;
  };
  const PriorWork landscape[] = {
      {"axisymmetric daily @100 km  (e.g. [22,23])", 100.0, 365, false},
      {"anisotropic annual @100-500 km (e.g. [17-19])", 100.0, 1, true},
      {"THIS WORK hourly @3.5 km (green star)", 3.5, 8760, true},
  };
  for (const auto& w : landscape) {
    const index_t band_limit =
        climate::degrees_to_band_limit(w.km / climate::kKmPerDegree);
    const double t = years * static_cast<double>(w.steps_per_year);
    const double flops = w.anisotropic
                             ? core::anisotropic_design_flops(band_limit, t)
                             : core::axisymmetric_design_flops(band_limit, t);
    std::printf("  %-48s L=%5lld  cost %.3e flops\n", w.label,
                static_cast<long long>(band_limit), flops);
  }

  std::printf("\nHeadline resolution advance:\n");
  bench::print_vs("28 x 8760 factor", core::paper_headline_factor(),
                  core::resolution_factor(5219, 8760, 186, 1));

  // Empirical validation: measured training time of the real pipeline should
  // scale consistently with the O(L^4 T + L^6) model (T fixed, L doubled).
  std::printf("\nMeasured training-time scaling (fixed T, growing L):\n");
  std::printf("%6s %12s %16s %18s\n", "L", "train (s)", "measured ratio",
              "model ratio");
  double prev_time = 0.0;
  index_t prev_l = 0;
  for (index_t band_limit : {8, 12, 16, 24}) {
    climate::SyntheticEsmConfig data_cfg;
    data_cfg.band_limit = band_limit;
    data_cfg.grid = {band_limit + 1, 2 * band_limit};
    data_cfg.num_years = 2;
    data_cfg.steps_per_year = 48;
    data_cfg.num_ensembles = 2;
    const auto esm = climate::generate_synthetic_esm(data_cfg);
    core::EmulatorConfig cfg;
    cfg.band_limit = band_limit;
    cfg.ar_order = 2;
    cfg.harmonics = 2;
    cfg.steps_per_year = 48;
    cfg.tile_size = 64;
    cfg.threads = 1;  // serial so the exponent is visible
    core::ClimateEmulator emulator(cfg);
    common::Timer timer;
    emulator.train(esm.data, esm.forcing);
    const double elapsed = timer.seconds();
    if (prev_time > 0.0) {
      const double t = 2.0 * 48.0;
      const double model_ratio = core::anisotropic_design_flops(band_limit, t) /
                                 core::anisotropic_design_flops(prev_l, t);
      std::printf("%6lld %12.3f %16.2f %18.2f\n",
                  static_cast<long long>(band_limit), elapsed,
                  elapsed / prev_time, model_ratio);
    } else {
      std::printf("%6lld %12.3f %16s %18s\n",
                  static_cast<long long>(band_limit), elapsed, "-", "-");
    }
    prev_time = elapsed;
    prev_l = band_limit;
  }
  return 0;
}
