// Figure 7: weak (left) and strong (right) scaling on Summit, 384 - 12,288
// V100 GPUs, all four precision variants.
//
// Weak scaling: constant memory per GPU (matrix grows with sqrt(P));
// performance per GPU should stay ~flat (paper: 92-111% of the 384-GPU
// baseline). Strong scaling: the largest problem fitting 512 nodes, run on
// 512/1024/2048 nodes; per-GPU efficiency drops (paper: DP 55%, DP/SP 72%,
// DP/SP/HP 60%, DP/HP 56%).
//
// Also measures real strong scaling of the runtime Cholesky on this node's
// cores (the node-scale analogue of the same experiment).
#include "bench_util.hpp"
#include "linalg/cholesky.hpp"
#include "perfmodel/calibration.hpp"
#include "perfmodel/cholesky_sim.hpp"
#include "runtime/tiled_cholesky_rt.hpp"

using namespace exaclim;
using linalg::PrecisionVariant;

int main() {
  bench::print_header("Figure 7 — weak and strong scaling on Summit");
  const auto machine = perfmodel::summit();

  // ---- Weak scaling: fixed memory per GPU --------------------------------
  std::printf("\nWeak scaling (TFlop/s per GPU, normalized %% of 384-GPU "
              "baseline):\n");
  std::printf("%8s", "GPUs");
  for (PrecisionVariant v : linalg::kAllVariants) {
    std::printf(" %14s", linalg::variant_name(v).c_str());
  }
  std::printf("\n");
  const index_t gpu_counts[] = {384, 1536, 3072, 6144, 12288};
  double baseline[4] = {0, 0, 0, 0};
  for (index_t gpus : gpu_counts) {
    const index_t nodes = gpus / machine.gpus_per_node;
    std::printf("%8lld", static_cast<long long>(gpus));
    int idx = 0;
    for (PrecisionVariant v : linalg::kAllVariants) {
      const double n =
          perfmodel::max_matrix_size(machine, nodes, v, 2048, 0.4);
      perfmodel::SimConfig cfg;
      cfg.machine = machine;
      cfg.nodes = nodes;
      cfg.matrix_size = n;
      cfg.tile_size = 2048;
      cfg.variant = v;
      const auto r = perfmodel::simulate_cholesky(cfg);
      if (gpus == 384) baseline[idx] = r.tflops_per_gpu;
      std::printf(" %6.1f (%3.0f%%)", r.tflops_per_gpu,
                  100.0 * r.tflops_per_gpu / baseline[idx]);
      ++idx;
    }
    std::printf("\n");
  }
  std::printf("  (paper: 92%%-111%% across the same range)\n");

  // ---- Strong scaling: fixed total problem --------------------------------
  const auto strong = perfmodel::paper_fig7_strong();
  std::printf("\nStrong scaling (per-GPU efficiency vs 3,072-GPU run, fixed "
              "problem = 512-node max):\n");
  std::printf("%8s", "GPUs");
  for (PrecisionVariant v : linalg::kAllVariants) {
    std::printf(" %14s", linalg::variant_name(v).c_str());
  }
  std::printf("\n");
  double strong_base[4] = {0, 0, 0, 0};
  double eff_at_12288[4] = {0, 0, 0, 0};
  for (index_t gpus : {index_t{3072}, index_t{6144}, index_t{12288}}) {
    const index_t nodes = gpus / machine.gpus_per_node;
    std::printf("%8lld", static_cast<long long>(gpus));
    int idx = 0;
    for (PrecisionVariant v : linalg::kAllVariants) {
      const double n = perfmodel::max_matrix_size(machine, 512, v, 2048, 0.4);
      perfmodel::SimConfig cfg;
      cfg.machine = machine;
      cfg.nodes = nodes;
      cfg.matrix_size = n;
      cfg.tile_size = 2048;
      cfg.variant = v;
      const auto r = perfmodel::simulate_cholesky(cfg);
      if (gpus == 3072) strong_base[idx] = r.tflops_per_gpu;
      const double eff = r.tflops_per_gpu / strong_base[idx];
      if (gpus == 12288) eff_at_12288[idx] = eff;
      std::printf(" %6.1f (%3.0f%%)", r.tflops_per_gpu, 100.0 * eff);
      ++idx;
    }
    std::printf("\n");
  }
  std::printf("\nStrong-scaling efficiency at 12,288 GPUs (paper vs model):\n");
  bench::print_vs("DP", strong.dp, eff_at_12288[0]);
  bench::print_vs("DP/SP", strong.dp_sp, eff_at_12288[1]);
  bench::print_vs("DP/SP/HP", strong.dp_sp_hp, eff_at_12288[2]);
  bench::print_vs("DP/HP", strong.dp_hp, eff_at_12288[3]);

  // ---- Measured node-scale strong scaling ---------------------------------
  std::printf("\nMeasured strong scaling on this node (DP, n = 2048):\n");
  std::printf("%8s %10s %12s %12s\n", "threads", "time(s)", "speedup",
              "efficiency");
  const index_t n = 2048;
  const index_t nb = 128;
  const index_t nt = (n + nb - 1) / nb;
  const linalg::Matrix a = bench::decaying_spd(n, 80.0);
  double t1 = 0.0;
  for (unsigned threads : {1u, 2u, 4u, 8u, 16u, 24u}) {
    auto tiled = linalg::TiledSymmetricMatrix::from_dense(
        a, nb, linalg::make_band_policy(nt, PrecisionVariant::DP));
    runtime::RtCholeskyOptions opt;
    opt.threads = threads;
    const auto r = runtime::cholesky_tiled_parallel(tiled, opt);
    if (threads == 1) t1 = r.run.seconds;
    std::printf("%8u %10.3f %12.2f %11.0f%%\n", threads, r.run.seconds,
                t1 / r.run.seconds, 100.0 * t1 / r.run.seconds / threads);
  }
  return 0;
}
