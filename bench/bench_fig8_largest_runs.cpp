// Figure 8: the largest-scale runs — 0.976 EFlop/s on 9,025 Frontier nodes,
// 0.739 on 1,936 Alps nodes, 0.375 on 3,072 Summit nodes, 0.243 on 1,024
// Leonardo nodes, plus the Alps/Frontier run-up points; all DP/HP.
//
// Replays every point through the calibrated performance model and prints
// paper-vs-model PFlop/s with the time-breakdown that explains each number.
#include "bench_util.hpp"
#include "perfmodel/calibration.hpp"
#include "perfmodel/cholesky_sim.hpp"

using namespace exaclim;

int main() {
  bench::print_header("Figure 8 — largest-scale DP/HP runs, all four systems");

  std::printf("\n%-10s %7s %9s | %10s %10s %7s | %9s %9s %9s\n", "system",
              "nodes", "size", "paper PF", "model PF", "ratio", "comp(s)",
              "comm(s)", "panel(s)");
  double worst_ratio = 1.0;
  for (const auto& point : perfmodel::paper_fig8()) {
    perfmodel::SimConfig cfg;
    cfg.machine = perfmodel::machine_by_name(point.system);
    cfg.nodes = point.nodes;
    cfg.matrix_size = point.matrix_size;
    cfg.tile_size = 2048;
    cfg.variant = linalg::PrecisionVariant::DP_HP;
    const auto r = perfmodel::simulate_cholesky(cfg);
    const double ratio = r.pflops / point.pflops;
    worst_ratio = std::max(worst_ratio, std::max(ratio, 1.0 / ratio));
    std::printf("%-10s %7lld %8.2fM | %10.1f %10.1f %7.2f | %9.1f %9.1f %9.1f\n",
                point.system, static_cast<long long>(point.nodes),
                point.matrix_size / 1e6, point.pflops, r.pflops, ratio,
                r.compute_seconds, r.comm_seconds, r.panel_seconds);
  }
  std::printf("\nWorst paper/model deviation: %.2fx\n", worst_ratio);

  // The shape claims of the figure.
  std::printf("\nShape checks:\n");
  auto pf = [](const char* system, index_t nodes, double size) {
    perfmodel::SimConfig cfg;
    cfg.machine = perfmodel::machine_by_name(system);
    cfg.nodes = nodes;
    cfg.matrix_size = size;
    cfg.tile_size = 2048;
    cfg.variant = linalg::PrecisionVariant::DP_HP;
    return perfmodel::simulate_cholesky(cfg).pflops;
  };
  const double frontier_full = pf("Frontier", 9025, 27.24e6);
  const double alps_full = pf("Alps", 1936, 15.73e6);
  const double summit_full = pf("Summit", 3072, 12.58e6);
  const double leonardo_full = pf("Leonardo", 1024, 8.39e6);
  std::printf("  Frontier-9025 is the fastest run:            %s\n",
              (frontier_full > alps_full && frontier_full > summit_full &&
               frontier_full > leonardo_full)
                  ? "yes (as in paper)"
                  : "NO");
  std::printf("  Alps run-up grows with node count:           %s\n",
              (pf("Alps", 1024, 10.49e6) < pf("Alps", 1600, 14.42e6) &&
               pf("Alps", 1600, 14.42e6) < alps_full)
                  ? "yes (as in paper)"
                  : "NO");
  std::printf("  Frontier run-up grows monotonically:         %s\n",
              (pf("Frontier", 2048, 12.58e6) < pf("Frontier", 4096, 16.78e6) &&
               pf("Frontier", 4096, 16.78e6) < pf("Frontier", 6400, 20.97e6) &&
               pf("Frontier", 6400, 20.97e6) < frontier_full)
                  ? "yes (as in paper)"
                  : "NO");
  std::printf("  Alps-1936 (7744 GH200) beats Summit-3072:    %s\n",
              alps_full > summit_full ? "yes (as in paper)" : "NO");
  return 0;
}
