// Shared helpers for the figure-reproduction benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "linalg/matrix.hpp"

namespace exaclim::bench {

/// SPD covariance-like matrix with exponentially decaying off-diagonal
/// strength (the structure of the emulator's innovation covariance).
inline linalg::Matrix decaying_spd(index_t n, double length_scale) {
  linalg::Matrix a(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      a(i, j) = std::exp(-std::abs(static_cast<double>(i - j)) / length_scale);
    }
    a(i, i) += 1e-3;
  }
  return a;
}

inline void print_header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

/// "paper X vs ours Y (ratio Z)" helper.
inline void print_vs(const char* label, double paper, double ours) {
  std::printf("  %-42s paper %10.3g | ours %10.3g | ratio %5.2f\n", label,
              paper, ours, paper != 0.0 ? ours / paper : 0.0);
}

/// Seconds per invocation of fn, warmed up and averaged over enough
/// repetitions to fill ~`budget` seconds (at least min_reps).
template <typename F>
double time_op(F&& fn, double budget = 0.1, int min_reps = 2) {
  fn();  // warm-up (also primes pack buffers / thread-local scratch)
  common::Timer warm;
  fn();
  const double est = warm.seconds();
  const int reps =
      std::max(min_reps, est > 0.0 ? static_cast<int>(budget / est) : 1000);
  common::Timer t;
  for (int r = 0; r < reps; ++r) fn();
  return t.seconds() / reps;
}

/// Accumulates rows and writes the machine-readable BENCH_*.json files that
/// future PRs regress against. Values are emitted as given; rows are flat
/// key/value objects.
class JsonBench {
 public:
  void add(std::string row) { rows_.push_back(std::move(row)); }

  /// Writes {"meta": {...}, "results": [rows]} to `path`.
  bool write(const char* path, const std::string& meta) const {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"meta\": %s,\n  \"results\": [\n", meta.c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "    %s%s\n", rows_[i].c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  std::vector<std::string> rows_;
};

}  // namespace exaclim::bench
