// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cmath>
#include <cstdio>

#include "linalg/matrix.hpp"

namespace exaclim::bench {

/// SPD covariance-like matrix with exponentially decaying off-diagonal
/// strength (the structure of the emulator's innovation covariance).
inline linalg::Matrix decaying_spd(index_t n, double length_scale) {
  linalg::Matrix a(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      a(i, j) = std::exp(-std::abs(static_cast<double>(i - j)) / length_scale);
    }
    a(i, i) += 1e-3;
  }
  return a;
}

inline void print_header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

/// "paper X vs ours Y (ratio Z)" helper.
inline void print_vs(const char* label, double paper, double ours) {
  std::printf("  %-42s paper %10.3g | ours %10.3g | ratio %5.2f\n", label,
              paper, ours, paper != 0.0 ? ours / paper : 0.0);
}

}  // namespace exaclim::bench
