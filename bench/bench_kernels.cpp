// Measured kernel rates backing the performance model: per-precision tile
// GEMM/SYRK/TRSM/POTRF, precision conversions, and full tile Cholesky
// variants (sequential and runtime-parallel).
//
// Default invocation runs the blocked-vs-reference quick bench and writes
// BENCH_kernels.json (the perf trajectory future PRs regress against); pass
// --gbench to additionally run the full Google-benchmark suite below.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/topology.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/kernels.hpp"
#include "runtime/tiled_cholesky_rt.hpp"

namespace {

using namespace exaclim;
using namespace exaclim::linalg;

template <typename T>
std::vector<T> random_tile(index_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<T> v(static_cast<std::size_t>(n * n));
  for (auto& x : v) x = static_cast<T>(rng.normal());
  return v;
}

Matrix spd(index_t n) {
  Matrix a(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      a(i, j) = std::exp(-std::abs(static_cast<double>(i - j)) / 64.0);
    }
    a(i, i) += 1e-3;
  }
  return a;
}

void BM_GemmF64(benchmark::State& state) {
  const index_t nb = state.range(0);
  const auto a = random_tile<double>(nb, 1);
  const auto b = random_tile<double>(nb, 2);
  auto c = random_tile<double>(nb, 3);
  for (auto _ : state) {
    gemm_nt_minus_f64(a.data(), b.data(), c.data(), nb, nb, nb);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      2.0 * nb * nb * nb * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmF64)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmF32(benchmark::State& state) {
  const index_t nb = state.range(0);
  const auto a = random_tile<float>(nb, 1);
  const auto b = random_tile<float>(nb, 2);
  auto c = random_tile<float>(nb, 3);
  for (auto _ : state) {
    gemm_nt_minus_f32(a.data(), b.data(), c.data(), nb, nb, nb);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      2.0 * nb * nb * nb * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmF32)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmTensorCoreStyle(benchmark::State& state) {
  // fp16-rounded operands, fp32 accumulate, fp16 store: the full HP GEMM
  // task body.
  const index_t nb = state.range(0);
  auto a = random_tile<float>(nb, 1);
  auto b = random_tile<float>(nb, 2);
  round_through_f16(a.data(), nb * nb);
  round_through_f16(b.data(), nb * nb);
  std::vector<common::half> c_storage(static_cast<std::size_t>(nb * nb));
  std::vector<float> c(static_cast<std::size_t>(nb * nb));
  for (auto _ : state) {
    convert_f16_to_f32(c_storage.data(), c.data(), nb * nb);
    gemm_nt_minus_f32(a.data(), b.data(), c.data(), nb, nb, nb);
    convert_f32_to_f16(c.data(), c_storage.data(), nb * nb);
    benchmark::DoNotOptimize(c_storage.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      2.0 * nb * nb * nb * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmTensorCoreStyle)->Arg(128)->Arg(256);

void BM_PotrfF64(benchmark::State& state) {
  const index_t nb = state.range(0);
  const Matrix a = spd(nb);
  std::vector<double> tile(static_cast<std::size_t>(nb * nb));
  for (auto _ : state) {
    state.PauseTiming();
    for (index_t i = 0; i < nb; ++i) {
      for (index_t j = 0; j < nb; ++j) {
        tile[static_cast<std::size_t>(i * nb + j)] = a(i, j);
      }
    }
    state.ResumeTiming();
    potrf_lower_f64(tile.data(), nb);
    benchmark::DoNotOptimize(tile.data());
  }
}
BENCHMARK(BM_PotrfF64)->Arg(64)->Arg(128)->Arg(256);

void BM_TrsmF64(benchmark::State& state) {
  const index_t nb = state.range(0);
  Matrix l = spd(nb);
  cholesky_dense(l);
  std::vector<double> lt(static_cast<std::size_t>(nb * nb));
  for (index_t i = 0; i < nb; ++i) {
    for (index_t j = 0; j < nb; ++j) {
      lt[static_cast<std::size_t>(i * nb + j)] = l(i, j);
    }
  }
  auto b = random_tile<double>(nb, 5);
  for (auto _ : state) {
    trsm_rlt_f64(lt.data(), b.data(), nb, nb);
    benchmark::DoNotOptimize(b.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      static_cast<double>(nb) * nb * nb * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TrsmF64)->Arg(128)->Arg(256);

void BM_ConvertF64ToF16(benchmark::State& state) {
  const index_t count = state.range(0);
  const auto src = random_tile<double>(static_cast<index_t>(std::sqrt(count)), 7);
  std::vector<double> data(static_cast<std::size_t>(count));
  common::Rng rng(9);
  for (auto& v : data) v = rng.normal();
  std::vector<common::half> dst(static_cast<std::size_t>(count));
  for (auto _ : state) {
    convert_f64_to_f16(data.data(), dst.data(), count);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          count * 8);
}
BENCHMARK(BM_ConvertF64ToF16)->Arg(1 << 16)->Arg(1 << 20);

void BM_CholeskyVariant(benchmark::State& state) {
  const index_t n = 1024;
  const index_t nb = 128;
  const index_t nt = (n + nb - 1) / nb;
  const auto variant = static_cast<PrecisionVariant>(state.range(0));
  const Matrix a = spd(n);
  for (auto _ : state) {
    state.PauseTiming();
    auto tiled =
        TiledSymmetricMatrix::from_dense(a, nb, make_band_policy(nt, variant));
    state.ResumeTiming();
    cholesky_tiled(tiled);
    benchmark::DoNotOptimize(&tiled);
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      static_cast<double>(n) * n * n / 3.0 * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
  state.SetLabel(variant_name(variant));
}
BENCHMARK(BM_CholeskyVariant)
    ->Arg(static_cast<int>(PrecisionVariant::DP))
    ->Arg(static_cast<int>(PrecisionVariant::DP_SP))
    ->Arg(static_cast<int>(PrecisionVariant::DP_SP_HP))
    ->Arg(static_cast<int>(PrecisionVariant::DP_HP));

void BM_CholeskyRuntimeThreads(benchmark::State& state) {
  const index_t n = 1536;
  const index_t nb = 128;
  const index_t nt = (n + nb - 1) / nb;
  const unsigned threads = static_cast<unsigned>(state.range(0));
  const Matrix a = spd(n);
  for (auto _ : state) {
    state.PauseTiming();
    auto tiled = TiledSymmetricMatrix::from_dense(
        a, nb, make_band_policy(nt, PrecisionVariant::DP));
    state.ResumeTiming();
    runtime::RtCholeskyOptions opt;
    opt.threads = threads;
    runtime::cholesky_tiled_parallel(tiled, opt);
    benchmark::DoNotOptimize(&tiled);
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      static_cast<double>(n) * n * n / 3.0 * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CholeskyRuntimeThreads)->Arg(1)->Arg(4)->Arg(8)->Arg(16)->Arg(24)
    ->UseRealTime();

// --- BENCH_kernels.json quick bench -----------------------------------------

/// One kernel row. `gemm_gf` is the measured blocked-GEMM rate at the same
/// precision and size, so every row carries `efficiency_vs_gemm` — the
/// fraction of the engine's own ceiling this kernel reaches (the number the
/// TRSM/POTRF critical-path work is judged by). Pass 0 for the GEMM row
/// itself (reported as 1.0).
std::string json_row(const char* kernel, const char* precision, index_t n,
                     double flops, double blocked_s, double ref_s,
                     double gemm_gf) {
  const double gf = flops / blocked_s / 1e9;
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"kernel\": \"%s\", \"precision\": \"%s\", \"n\": %lld, "
                "\"gflops\": %.3f, \"ref_gflops\": %.3f, \"speedup\": %.3f, "
                "\"efficiency_vs_gemm\": %.3f, "
                "\"ms\": %.4f, \"ref_ms\": %.4f}",
                kernel, precision, static_cast<long long>(n), gf,
                flops / ref_s / 1e9, ref_s / blocked_s,
                gemm_gf > 0.0 ? gf / gemm_gf : 1.0, blocked_s * 1e3,
                ref_s * 1e3);
  return buf;
}

template <typename T>
void bench_type(const char* precision, exaclim::bench::JsonBench& out) {
  using exaclim::bench::time_op;
  for (index_t nb : {64, 128, 256}) {
    const auto a = random_tile<T>(nb, 1);
    const auto b = random_tile<T>(nb, 2);
    auto c = random_tile<T>(nb, 3);
    const double gemm_flops = 2.0 * nb * nb * nb;
    double tb, tr;
    if constexpr (sizeof(T) == 8) {
      tb = time_op([&] { gemm_nt_minus_f64(a.data(), b.data(), c.data(), nb, nb, nb); });
      tr = time_op([&] { gemm_nt_minus_ref_f64(a.data(), b.data(), c.data(), nb, nb, nb); });
    } else {
      tb = time_op([&] { gemm_nt_minus_f32(a.data(), b.data(), c.data(), nb, nb, nb); });
      tr = time_op([&] { gemm_nt_minus_ref_f32(a.data(), b.data(), c.data(), nb, nb, nb); });
    }
    const double gemm_gf = gemm_flops / tb / 1e9;
    out.add(json_row("gemm_nt", precision, nb, gemm_flops, tb, tr, 0.0));

    const double syrk_flops = static_cast<double>(nb) * nb * nb;  // lower half
    if constexpr (sizeof(T) == 8) {
      tb = time_op([&] { syrk_ln_minus_f64(a.data(), c.data(), nb, nb); });
      tr = time_op([&] { syrk_ln_minus_ref_f64(a.data(), c.data(), nb, nb); });
    } else {
      tb = time_op([&] { syrk_ln_minus_f32(a.data(), c.data(), nb, nb); });
      tr = time_op([&] { syrk_ln_minus_ref_f32(a.data(), c.data(), nb, nb); });
    }
    out.add(json_row("syrk_ln", precision, nb, syrk_flops, tb, tr, gemm_gf));

    // TRSM against the Cholesky factor of an SPD tile.
    std::vector<T> l(static_cast<std::size_t>(nb * nb));
    {
      const Matrix dense = spd(nb);
      for (index_t i = 0; i < nb; ++i) {
        for (index_t j = 0; j < nb; ++j) {
          l[static_cast<std::size_t>(i * nb + j)] = static_cast<T>(dense(i, j));
        }
      }
    }
    std::vector<T> lfac = l;
    const double trsm_flops = static_cast<double>(nb) * nb * nb;
    auto rhs = random_tile<T>(nb, 5);
    if constexpr (sizeof(T) == 8) {
      potrf_lower_ref_f64(lfac.data(), nb);
      tb = time_op([&] { auto x = rhs; trsm_rlt_f64(lfac.data(), x.data(), nb, nb); });
      tr = time_op([&] { auto x = rhs; trsm_rlt_ref_f64(lfac.data(), x.data(), nb, nb); });
    } else {
      potrf_lower_ref_f32(lfac.data(), nb);
      tb = time_op([&] { auto x = rhs; trsm_rlt_f32(lfac.data(), x.data(), nb, nb); });
      tr = time_op([&] { auto x = rhs; trsm_rlt_ref_f32(lfac.data(), x.data(), nb, nb); });
    }
    out.add(json_row("trsm_rlt", precision, nb, trsm_flops, tb, tr, gemm_gf));

    const double potrf_flops = static_cast<double>(nb) * nb * nb / 3.0;
    if constexpr (sizeof(T) == 8) {
      tb = time_op([&] { auto x = l; potrf_lower_f64(x.data(), nb); });
      tr = time_op([&] { auto x = l; potrf_lower_ref_f64(x.data(), nb); });
    } else {
      tb = time_op([&] { auto x = l; potrf_lower_f32(x.data(), nb); });
      tr = time_op([&] { auto x = l; potrf_lower_ref_f32(x.data(), nb); });
    }
    out.add(json_row("potrf", precision, nb, potrf_flops, tb, tr, gemm_gf));
  }
}

void bench_f16(exaclim::bench::JsonBench& out) {
  // Full HP tile-update task bodies, new vs old. New: widen the scaled-half
  // C tile, run the packed-half kernel (f16 operands consumed in place,
  // scales folded into alpha), repack C with a fresh scale. Old
  // (round-through-f32): widen every f16 operand AND the C tile to full f32
  // copies with the element-wise converters, run the f32 blocked kernel,
  // narrow C back — the task body the engines used before the packed path.
  using exaclim::bench::time_op;
  for (index_t nb : {64, 128, 256}) {
    const auto af = random_tile<float>(nb, 1);
    const auto bf = random_tile<float>(nb, 2);
    std::vector<common::half> ah(af.size()), bh(bf.size());
    const float sa = convert_f32_to_f16_scaled(af.data(), ah.data(), nb * nb);
    const float sb = convert_f32_to_f16_scaled(bf.data(), bh.data(), nb * nb);
    std::vector<common::half> c16(static_cast<std::size_t>(nb * nb));
    float sc = convert_f32_to_f16_scaled(random_tile<float>(nb, 3).data(),
                                         c16.data(), nb * nb);
    std::vector<float> aw(af.size()), bw(bf.size()), cw(c16.size());

    const double gemm_flops = 2.0 * nb * nb * nb;
    double tb = time_op([&] {
      convert_f16_scaled_to_f32(c16.data(), sc, cw.data(), nb * nb);
      gemm_nt_minus_f16(ah.data(), sa, bh.data(), sb, cw.data(), nb, nb, nb);
      sc = convert_f32_to_f16_scaled(cw.data(), c16.data(), nb * nb);
    });
    double tr = time_op([&] {
      convert_f16_to_f32(ah.data(), aw.data(), nb * nb);
      convert_f16_to_f32(bh.data(), bw.data(), nb * nb);
      convert_f16_to_f32(c16.data(), cw.data(), nb * nb);
      gemm_nt_minus_f32(aw.data(), bw.data(), cw.data(), nb, nb, nb);
      convert_f32_to_f16(cw.data(), c16.data(), nb * nb);
    });
    const double gemm_gf = gemm_flops / tb / 1e9;
    out.add(json_row("gemm_nt", "f16", nb, gemm_flops, tb, tr, 0.0));

    const double syrk_flops = static_cast<double>(nb) * nb * nb;
    tb = time_op([&] {
      convert_f16_scaled_to_f32(c16.data(), sc, cw.data(), nb * nb);
      syrk_ln_minus_f16(ah.data(), sa, cw.data(), nb, nb);
      sc = convert_f32_to_f16_scaled(cw.data(), c16.data(), nb * nb);
    });
    tr = time_op([&] {
      convert_f16_to_f32(ah.data(), aw.data(), nb * nb);
      convert_f16_to_f32(c16.data(), cw.data(), nb * nb);
      syrk_ln_minus_f32(aw.data(), cw.data(), nb, nb);
      convert_f32_to_f16(cw.data(), c16.data(), nb * nb);
    });
    out.add(json_row("syrk_ln", "f16", nb, syrk_flops, tb, tr, gemm_gf));

    // HP TRSM task body, new vs old. New: packed-half solve straight off the
    // stored halves + scale, then repack. Old: widen the scaled tile to a
    // full f32 copy, run the f32 blocked TRSM, repack.
    std::vector<float> lfac(static_cast<std::size_t>(nb * nb));
    {
      const Matrix dense = spd(nb);
      for (index_t i = 0; i < nb; ++i) {
        for (index_t j = 0; j < nb; ++j) {
          lfac[static_cast<std::size_t>(i * nb + j)] =
              static_cast<float>(dense(i, j));
        }
      }
    }
    potrf_lower_ref_f32(lfac.data(), nb);
    std::vector<common::half> rhs16(static_cast<std::size_t>(nb * nb));
    float sr = convert_f32_to_f16_scaled(random_tile<float>(nb, 5).data(),
                                         rhs16.data(), nb * nb);
    const double trsm_flops = static_cast<double>(nb) * nb * nb;
    tb = time_op([&] {
      trsm_rlt_f16(lfac.data(), rhs16.data(), sr, cw.data(), nb, nb);
      sr = convert_f32_to_f16_scaled(cw.data(), rhs16.data(), nb * nb);
    });
    tr = time_op([&] {
      convert_f16_scaled_to_f32(rhs16.data(), sr, cw.data(), nb * nb);
      trsm_rlt_f32(lfac.data(), cw.data(), nb, nb);
      sr = convert_f32_to_f16_scaled(cw.data(), rhs16.data(), nb * nb);
    });
    out.add(json_row("trsm_rlt", "f16", nb, trsm_flops, tb, tr, gemm_gf));
  }
}

/// Runtime-parallel tiled Cholesky on the unified team, with the scheduler's
/// steal/affinity/park counters recorded so scheduler changes stay
/// measurable in the committed trajectory. 16x16 tiles is the acceptance
/// shape for the work-stealing runtime (enough width that affinity and
/// steal policy matter).
void bench_scheduler(exaclim::bench::JsonBench& out) {
  using exaclim::bench::time_op;
  const index_t nb = 64;
  const index_t nt = 16;
  const index_t n = nb * nt;
  const Matrix a = spd(n);
  runtime::RtCholeskyResult last;
  const double secs = time_op(
      [&] {
        auto tiled = TiledSymmetricMatrix::from_dense(
            a, nb, make_band_policy(nt, PrecisionVariant::DP));
        last = runtime::cholesky_tiled_parallel(tiled, {});
      },
      0.3, 2);
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"kernel\": \"cholesky_rt\", \"precision\": \"f64\", \"n\": %lld, "
      "\"tiles\": %lld, \"ms\": %.4f, \"dag_ms\": %.4f, \"threads\": %u, "
      "\"efficiency\": %.3f, \"steal_hits\": %lld, \"steal_misses\": %lld, "
      "\"affinity_hits\": %lld, \"affinity_misses\": %lld, \"parks\": %lld, "
      "\"wakes\": %lld}",
      static_cast<long long>(n), static_cast<long long>(nt), secs * 1e3,
      last.run.seconds * 1e3, last.run.threads,
      last.run.parallel_efficiency(),
      static_cast<long long>(last.run.counters.steal_hits),
      static_cast<long long>(last.run.counters.steal_misses),
      static_cast<long long>(last.run.counters.affinity_hits),
      static_cast<long long>(last.run.counters.affinity_misses),
      static_cast<long long>(last.run.counters.parks),
      static_cast<long long>(last.run.counters.wakes));
  out.add(buf);
}

/// Checkpointed runtime Cholesky vs the plain run at the same shape: the
/// committed "ms" is the checkpointed time and "plain_ms" the baseline, so
/// the snapshot overhead (quiesce + serialize + fsync + rename per round)
/// stays a regression-visible number.
void bench_checkpoint(exaclim::bench::JsonBench& out) {
  using exaclim::bench::time_op;
  const index_t nb = 64;
  const index_t nt = 16;
  const index_t n = nb * nt;
  const Matrix a = spd(n);
  const double plain = time_op(
      [&] {
        auto tiled = TiledSymmetricMatrix::from_dense(
            a, nb, make_band_policy(nt, PrecisionVariant::DP));
        runtime::cholesky_tiled_parallel(tiled, {});
      },
      0.3, 2);
  const std::string ckpt_path = "BENCH_cholesky.ckpt";
  runtime::RtCholeskyResult last;
  const double ckpt = time_op(
      [&] {
        auto tiled = TiledSymmetricMatrix::from_dense(
            a, nb, make_band_policy(nt, PrecisionVariant::DP));
        runtime::RtCholeskyOptions opt;
        opt.ft.checkpoint_path = ckpt_path;
        opt.ft.checkpoint_every = 256;
        last = runtime::cholesky_tiled_parallel(tiled, opt);
      },
      0.3, 2);
  std::remove(ckpt_path.c_str());
  char buf[384];
  std::snprintf(
      buf, sizeof(buf),
      "{\"kernel\": \"cholesky_ckpt\", \"precision\": \"f64\", \"n\": %lld, "
      "\"tiles\": %lld, \"ms\": %.4f, \"plain_ms\": %.4f, "
      "\"overhead_pct\": %.2f, \"ckpt_every\": 256, \"checkpoints\": %lld}",
      static_cast<long long>(n), static_cast<long long>(nt), ckpt * 1e3,
      plain * 1e3, (ckpt / plain - 1.0) * 100.0,
      static_cast<long long>(last.checkpoints_written));
  out.add(buf);
}

void write_kernels_json() {
  exaclim::bench::JsonBench out;
  bench_type<double>("f64", out);
  bench_type<float>("f32", out);
  bench_f16(out);
  bench_scheduler(out);
  bench_checkpoint(out);
  // The ISA fields catch a stale build dir configured without -march=native,
  // which silently drops the wide micro-tiles and the F16C conversions and
  // makes every speedup column meaningless.
#if defined(__AVX512F__)
  const int avx512 = 1;
#else
  const int avx512 = 0;
#endif
#if defined(__F16C__)
  const int f16c = 1;
#else
  const int f16c = 0;
#endif
  const auto& team = exaclim::common::WorkerTeam::instance();
  const auto& topo = exaclim::common::Topology::instance();
  const unsigned hc = std::thread::hardware_concurrency();
  const bool degraded = hc <= 1;
  if (degraded) {
    std::fprintf(
        stderr,
        "*** WARNING: hardware_concurrency == %u — this looks like a "
        "1-core container.\n"
        "*** Kernel rates measured here are NOT comparable to multi-core "
        "runs; the\n"
        "*** emitted meta carries \"degraded_env\": true so trajectory "
        "tooling can skip it.\n",
        hc);
  }
  const KernelTuning tuning = active_tuning();
  char meta[640];
  std::snprintf(
      meta, sizeof(meta),
      "{\"bench\": \"kernels\", \"hardware_concurrency\": %u, "
      "\"degraded_env\": %s, \"avx512\": %d, \"f16c\": %d, \"threads\": %u, "
      "\"pinned\": %d, \"numa_nodes\": %u, "
      "\"l1d_bytes\": %zu, \"l2_bytes\": %zu, \"l3_bytes\": %zu, "
      "\"tune_mode\": \"%s\", \"tune_probed\": %s, "
      "\"f64_kc\": %lld, \"f64_mc\": %lld, \"f64_nc\": %lld, "
      "\"f32_kc\": %lld, \"f32_mc\": %lld, \"f32_nc\": %lld}",
      hc, degraded ? "true" : "false", avx512, f16c, team.max_participants(),
      team.pinned() ? 1 : 0, topo.num_nodes(), tuning.l1d_bytes,
      tuning.l2_bytes, tuning.l3_bytes, tune_mode_name(tuning.mode).c_str(),
      tuning.probed ? "true" : "false",
      static_cast<long long>(tuning.f64.kc),
      static_cast<long long>(tuning.f64.mc),
      static_cast<long long>(tuning.f64.nc),
      static_cast<long long>(tuning.f32.kc),
      static_cast<long long>(tuning.f32.mc),
      static_cast<long long>(tuning.f32.nc));
  if (out.write("BENCH_kernels.json", meta)) {
    std::printf("wrote BENCH_kernels.json\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool gbench = false;
  const char* tune_env = std::getenv("EXACLIM_TUNE");
  std::string tune = tune_env != nullptr ? tune_env : "";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gbench") == 0) gbench = true;
    if (std::strcmp(argv[i], "--tune") == 0 && i + 1 < argc) tune = argv[i + 1];
    if (std::strncmp(argv[i], "--tune=", 7) == 0) tune = argv[i] + 7;
  }
  if (!tune.empty()) {
    exaclim::linalg::set_tune_mode(exaclim::linalg::parse_tune_mode(tune));
  }
  write_kernels_json();
  if (gbench) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return 0;
}
