// Figure 6: Cholesky throughput of DP / DP/SP / DP/SP/HP / DP/HP on 2,048
// Summit nodes, sizes 2.1M - 8.39M; DP reaches 61.7% of peak; speedups
// 2.0x / 3.2x / 5.2x; DP/HP peaks at ~304.84 PFlop/s.
//
// (a) modelled at paper scale with the calibrated Summit model;
// (b) measured on this node with the real mixed-precision solver (same
//     variant ordering, CPU-sized matrices) — the shape that transfers.
#include "bench_util.hpp"
#include "common/timer.hpp"
#include "linalg/cholesky.hpp"
#include "perfmodel/calibration.hpp"
#include "perfmodel/cholesky_sim.hpp"
#include "runtime/tiled_cholesky_rt.hpp"

using namespace exaclim;
using linalg::PrecisionVariant;

int main() {
  bench::print_header(
      "Figure 6 — precision-variant throughput, 2,048 Summit nodes");

  const auto anchors = perfmodel::paper_fig6();
  const auto machine = perfmodel::summit();

  std::printf("\nModelled PFlop/s by matrix size:\n%10s", "size");
  for (PrecisionVariant v : linalg::kAllVariants) {
    std::printf(" %10s", linalg::variant_name(v).c_str());
  }
  std::printf("\n");
  double dp_at_max = 0.0;
  double by_variant_at_max[4] = {0, 0, 0, 0};
  for (double size :
       {2.10e6, 3.15e6, 4.19e6, 5.24e6, 6.29e6, 7.34e6, 8.39e6}) {
    std::printf("%9.2fM", size / 1e6);
    int idx = 0;
    for (PrecisionVariant v : linalg::kAllVariants) {
      perfmodel::SimConfig cfg;
      cfg.machine = machine;
      cfg.nodes = 2048;
      cfg.matrix_size = size;
      cfg.tile_size = 2048;
      cfg.variant = v;
      const auto r = perfmodel::simulate_cholesky(cfg);
      std::printf(" %10.1f", r.pflops);
      if (size == 8.39e6) {
        by_variant_at_max[idx] = r.pflops;
        if (v == PrecisionVariant::DP) dp_at_max = r.pflops;
      }
      ++idx;
    }
    std::printf("\n");
  }

  std::printf("\nAnchors at 8.39M (paper vs model):\n");
  bench::print_vs("DP fraction of 2048-node peak",
                  anchors.dp_fraction_of_peak,
                  dp_at_max / machine.dp_peak_pflops(2048));
  bench::print_vs("DP/SP speedup over DP", anchors.speedup_dp_sp,
                  by_variant_at_max[1] / dp_at_max);
  bench::print_vs("DP/SP/HP speedup over DP", anchors.speedup_dp_sp_hp,
                  by_variant_at_max[2] / dp_at_max);
  bench::print_vs("DP/HP speedup over DP", anchors.speedup_dp_hp,
                  by_variant_at_max[3] / dp_at_max);
  bench::print_vs("DP/HP PFlop/s", anchors.dp_hp_pflops,
                  by_variant_at_max[3]);

  // (b) Measured on this node: the same experiment at CPU scale.
  std::printf("\nMeasured on this node (n = 2560, nb = 160, all cores):\n");
  std::printf("%-9s %10s %12s %10s\n", "variant", "time(s)", "GFlop/s",
              "speedup");
  const index_t n = 2560;
  const index_t nb = 160;
  const index_t nt = (n + nb - 1) / nb;
  const linalg::Matrix a = bench::decaying_spd(n, 100.0);
  double dp_time = 0.0;
  for (PrecisionVariant v : linalg::kAllVariants) {
    auto tiled = linalg::TiledSymmetricMatrix::from_dense(
        a, nb, linalg::make_band_policy(nt, v));
    runtime::RtCholeskyOptions opt;
    const auto result = runtime::cholesky_tiled_parallel(tiled, opt);
    if (v == PrecisionVariant::DP) dp_time = result.run.seconds;
    const double flops = static_cast<double>(n) * n * n / 3.0;
    std::printf("%-9s %10.3f %12.1f %10.2f\n", linalg::variant_name(v).c_str(),
                result.run.seconds, flops / result.run.seconds / 1e9,
                dp_time / result.run.seconds);
  }
  std::printf("\n(CPU fp32 is ~2x fp64 and software fp16 adds conversion\n"
              "work, so measured CPU speedups are smaller than GPU tensor-\n"
              "core speedups — the ordering DP < DP/SP <= DP/HP transfers.)\n");
  return 0;
}
