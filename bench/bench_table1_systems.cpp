// Table I: DP/HP Cholesky on 1,024 nodes of Frontier / Alps / Leonardo /
// Summit — absolute PFlop/s and normalized TFlop/s per GPU.
//
// Replays each row through the calibrated model, prints paper-vs-model, and
// verifies the table's qualitative conclusions (GH200 ~1.6x MI250X per GPU;
// A100 ~ MI250X; V100 slowest).
#include "bench_util.hpp"
#include "perfmodel/calibration.hpp"
#include "perfmodel/cholesky_sim.hpp"

using namespace exaclim;

int main() {
  bench::print_header("Table I — DP/HP on 1,024 nodes of the four systems");

  std::printf("\n%-10s %6s %9s | %10s %10s | %11s %11s\n", "system", "GPUs",
              "size", "paper PF", "model PF", "paper TF/G", "model TF/G");
  double model_per_gpu[4] = {0, 0, 0, 0};
  int idx = 0;
  for (const auto& row : perfmodel::paper_table1()) {
    perfmodel::SimConfig cfg;
    cfg.machine = perfmodel::machine_by_name(row.system);
    cfg.nodes = 1024;
    cfg.matrix_size = row.matrix_size;
    cfg.tile_size = 2048;
    cfg.variant = linalg::PrecisionVariant::DP_HP;
    const auto r = perfmodel::simulate_cholesky(cfg);
    model_per_gpu[idx++] = r.tflops_per_gpu;
    std::printf("%-10s %6lld %8.2fM | %10.1f %10.1f | %11.1f %11.1f\n",
                row.system, static_cast<long long>(row.gpus),
                row.matrix_size / 1e6, row.pflops, r.pflops,
                row.tflops_per_gpu, r.tflops_per_gpu);
  }

  // Order in paper_table1(): Frontier, Alps, Leonardo, Summit.
  std::printf("\nQualitative checks:\n");
  bench::print_vs("GH200 / MI250X per-GPU ratio (paper 1.6/1.72...)",
                  93.8 / 54.6, model_per_gpu[1] / model_per_gpu[0]);
  bench::print_vs("A100 / MI250X per-GPU ratio (~1.0)", 57.2 / 54.6,
                  model_per_gpu[2] / model_per_gpu[0]);
  std::printf("  V100 slowest per GPU: %s\n",
              (model_per_gpu[3] < model_per_gpu[0] &&
               model_per_gpu[3] < model_per_gpu[1] &&
               model_per_gpu[3] < model_per_gpu[2])
                  ? "yes (as in paper)"
                  : "NO");

  // Memory-capacity cross-check: the paper "maxes out device memory".
  std::printf("\nLargest DP/HP matrix by device memory (fill 40%%, model):\n");
  for (const auto& row : perfmodel::paper_table1()) {
    const auto machine = perfmodel::machine_by_name(row.system);
    const double n = perfmodel::max_matrix_size(
        machine, 1024, linalg::PrecisionVariant::DP_HP, 2048, 0.4);
    std::printf("  %-10s model %7.2fM vs paper size %7.2fM\n", row.system,
                n / 1e6, row.matrix_size / 1e6);
  }
  return 0;
}
