// Ablation: tile size nb — the granularity dial of tile-based solvers.
//
// Small tiles expose parallelism (more tasks, shorter critical path in
// flops) but pay scheduling overhead and lose kernel efficiency; large tiles
// do the opposite. This bench measures the real runtime Cholesky across nb
// and prints the DAG shape next to wall time, and shows how the analytic
// cluster model's panel term responds to nb at Summit scale.
#include "bench_util.hpp"
#include "perfmodel/cholesky_sim.hpp"
#include "runtime/tiled_cholesky_rt.hpp"

using namespace exaclim;
using linalg::PrecisionVariant;

int main() {
  bench::print_header("Ablation — tile size (measured node scale + model)");

  const index_t n = 2048;
  const linalg::Matrix a = bench::decaying_spd(n, 80.0);
  std::printf("\nMeasured (n = %lld, DP, all cores):\n",
              static_cast<long long>(n));
  std::printf("%6s %6s %8s %10s %14s %12s\n", "nb", "nt", "tasks",
              "crit path", "parallelism", "time (s)");
  for (index_t nb : {64, 128, 256, 512, 1024}) {
    const index_t nt = (n + nb - 1) / nb;
    auto tiled = linalg::TiledSymmetricMatrix::from_dense(
        a, nb, linalg::make_band_policy(nt, PrecisionVariant::DP));
    runtime::RtCholeskyOptions opt;
    const auto r = runtime::cholesky_tiled_parallel(tiled, opt);
    std::printf("%6lld %6lld %8lld %10lld %14.1f %12.4f\n",
                static_cast<long long>(nb), static_cast<long long>(nt),
                static_cast<long long>(r.total_tasks),
                static_cast<long long>(r.critical_path_tasks),
                static_cast<double>(r.total_tasks) /
                    static_cast<double>(r.critical_path_tasks),
                r.run.seconds);
  }

  std::printf("\nModelled (Summit 2048 nodes, DP/HP, n = 8.39M):\n");
  std::printf("%6s %10s %12s %12s %12s\n", "nb", "PFlop/s", "panel (s)",
              "comm (s)", "compute (s)");
  for (index_t nb : {1024, 2048, 4096, 8192}) {
    perfmodel::SimConfig cfg;
    cfg.machine = perfmodel::summit();
    cfg.nodes = 2048;
    cfg.matrix_size = 8.39e6;
    cfg.tile_size = nb;
    cfg.variant = PrecisionVariant::DP_HP;
    const auto r = perfmodel::simulate_cholesky(cfg);
    std::printf("%6lld %10.1f %12.1f %12.1f %12.1f\n",
                static_cast<long long>(nb), r.pflops, r.panel_seconds,
                r.comm_seconds, r.compute_seconds);
  }
  std::printf("\nTrade-off: the panel chain shrinks with fewer, larger tiles\n"
              "while per-tile broadcast volume grows — the flat region in\n"
              "the middle is why production tile solvers run nb ~ 2048.\n");
  return 0;
}
