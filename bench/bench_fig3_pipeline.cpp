// Figure 3: the design-and-development pipeline, instrumented.
//
// Figure 3 of the paper is the pipeline diagram (trend -> SHT -> VAR ->
// covariance -> Cholesky -> emulate). This bench runs the real pipeline and
// prints a stage-by-stage account — time, asymptotic cost, and what each
// stage produced — turning the diagram into a measured table. Also reports
// the task-DAG statistics of the Cholesky stage (the DAG pictured in the
// figure).
#include "bench_util.hpp"
#include "climate/synthetic_esm.hpp"
#include "common/timer.hpp"
#include "core/emulator.hpp"
#include "linalg/precision_policy.hpp"
#include "runtime/tiled_cholesky_rt.hpp"

using namespace exaclim;

int main() {
  bench::print_header("Figure 3 — emulator pipeline, stage by stage");

  const index_t band_limit = 20;
  const index_t tau = 96;
  climate::SyntheticEsmConfig data_cfg;
  data_cfg.band_limit = band_limit;
  data_cfg.grid = {band_limit + 1, 2 * band_limit};
  data_cfg.num_years = 3;
  data_cfg.steps_per_year = tau;
  data_cfg.num_ensembles = 2;
  const auto esm = climate::generate_synthetic_esm(data_cfg);

  core::EmulatorConfig cfg;
  cfg.band_limit = band_limit;
  cfg.ar_order = 3;
  cfg.harmonics = 5;
  cfg.steps_per_year = tau;
  cfg.cholesky_variant = linalg::PrecisionVariant::DP_HP;
  cfg.tile_size = 100;
  core::ClimateEmulator emulator(cfg);
  const auto report = emulator.train(esm.data, esm.forcing);

  const double t_steps = static_cast<double>(esm.data.num_steps());
  std::printf("\n%-34s %10s %16s\n", "stage", "time (s)", "asymptotic cost");
  std::printf("%-34s %10.3f %16s\n", "1. mean trend + sigma (Eq. 2)",
              report.trend_seconds, "O(N T)");
  std::printf("%-34s %10.3f %16s\n", "2. fast SHT of Z (Eq. 4-8)",
              report.sht_seconds, "O(T L^3)");
  std::printf("%-34s %10.3f %16s\n", "3. diagonal VAR(3)",
              report.ar_seconds, "O(T L^2)");
  std::printf("%-34s %10.3f %16s\n", "4. covariance U-hat (Eq. 9)",
              report.covariance_seconds, "O(T L^4)");
  std::printf("%-34s %10.3f %16s\n", "5. mixed-precision Cholesky",
              report.cholesky_seconds, "O(L^6)");
  std::printf("%-34s %10.3f\n", "total", report.total_seconds);
  std::printf("\nTraining data: %.0f points | innovation samples %lld | "
              "covariance dim %lld%s\n",
              esm.data.total_points() * t_steps / t_steps,
              static_cast<long long>(report.innovation_samples),
              static_cast<long long>(band_limit * band_limit),
              report.covariance_deficient ? " (rank-deficient, jittered)" : "");

  // The DAG the figure draws, as built by the runtime for this problem.
  {
    const index_t n = band_limit * band_limit;
    const index_t nb = cfg.tile_size;
    const index_t nt = (n + nb - 1) / nb;
    linalg::Matrix a = bench::decaying_spd(n, 32.0);
    auto tiled = linalg::TiledSymmetricMatrix::from_dense(
        a, nb, linalg::make_band_policy(nt, cfg.cholesky_variant));
    runtime::CholeskyGraph graph(tiled, linalg::ConversionPlacement::Sender);
    std::printf("\nCholesky task DAG (nt = %lld tiles):\n",
                static_cast<long long>(nt));
    std::printf("  tasks %lld (of which %lld CONVERT) | critical path %lld "
                "tasks | avg parallelism %.1f\n",
                static_cast<long long>(graph.graph().num_tasks()),
                static_cast<long long>(graph.convert_tasks()),
                static_cast<long long>(graph.graph().critical_path_tasks()),
                static_cast<double>(graph.graph().num_tasks()) /
                    static_cast<double>(graph.graph().critical_path_tasks()));
  }

  // Emulation throughput (Section III-B: O(L^3 T)).
  {
    common::Timer timer;
    const auto emu = emulator.emulate(esm.data.num_steps(), 2, esm.forcing, 1);
    const double secs = timer.seconds();
    std::printf("\nEmulation: %.0f points in %.3f s (%.1f M points/s)\n",
                emu.total_points(), secs, emu.total_points() / secs / 1e6);
  }
  return 0;
}
