#!/usr/bin/env bash
# Full robustness gate: the tier-1 build + test sweep, a lint stage, then the
# concurrency and fault/determinism suites under the sanitizer presets.
#
#   scripts/check.sh            # tier-1 + lint + kernels + asan + tsan sweeps
#   scripts/check.sh --tier1    # tier-1 only (what CI must always pass)
#   scripts/check.sh --lint     # lint stage only (tidy + grep invariants)
#
# The lint stage runs clang-tidy (warnings-as-errors, profile in .clang-tidy)
# over src/ when the binary is on PATH — containers without it get a warning
# and the grep-based invariants still run, so the stage never silently skips
# the cheap checks. The kernels stage re-runs the blocked-vs-reference parity
# suites plus the DAG-verifier suite under the relassert preset (-O2 with
# assertions and -Wshadow -Wconversion on runtime/ and analysis/), a
# different optimization level than tier 1 — explicit-vector kernels are the
# code most likely to diverge when the compiler changes its mind. The asan
# preset races the fault/recovery and verifier paths for lifetime bugs; the
# tsan preset hunts data races in the work-stealing runtime and additionally
# runs its sweep with EXACLIM_VERIFY=dynamic, so the shadow checker's own
# atomics are raced under instrumentation while it cross-checks the executed
# schedules. The sanitizers also run the determinism suite so
# bit-reproducibility is checked under instrumented schedules, where thread
# interleavings differ most from release builds.
set -euo pipefail
cd "$(dirname "$0")/.."

run() { echo "+ $*" >&2; "$@"; }

# --- lint: clang-tidy (when present) + grep invariants ------------------------
# The grep invariants encode rules the compiler can't see:
#   * no naked new[] in task-body code (runtime/linalg/analysis) — tile
#     buffers go through the arena / unique_ptr helpers so retry re-entry
#     can't leak;
#   * std::memory_order_relaxed only in the audited lock-free modules listed
#     below — everywhere else the default seq_cst stays until a relaxation
#     has been argued through and the file added here;
#   * no direct fopen outside common/io.cpp — all file I/O funnels through
#     the checksummed, quarantine-aware io layer.
lint() {
  local fail=0

  if command -v clang-tidy >/dev/null 2>&1; then
    run cmake -B build -S . -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
    local sources
    mapfile -t sources < <(find src -name '*.cpp' | sort)
    run clang-tidy -p build --quiet "${sources[@]}" || fail=1
  else
    echo "warning: clang-tidy not on PATH; skipping tidy checks" >&2
  fi

  local hits
  hits="$(grep -rnE '\bnew\b[^;()]*\[' src/runtime src/linalg src/analysis \
          || true)"
  if [[ -n "$hits" ]]; then
    echo "lint: naked new[] in task-body code (use arena/unique_ptr):" >&2
    echo "$hits" >&2
    fail=1
  fi

  local relaxed_ok=(
    src/common/work_steal_deque.hpp   # Chase-Lev deque (ABA-audited)
    src/common/arena.hpp
    src/common/memory.hpp             # arena stats counters
    src/common/parallel.hpp           # chunk-claim ticket counters
    src/common/thread_pool.cpp        # sleep/wake flags behind a mutex
    src/runtime/scheduler.cpp         # progress counters; edges use acq_rel
    src/runtime/tiled_cholesky_rt.hpp # per-tile precision escalation flags
    src/runtime/tiled_cholesky_rt.cpp
    src/linalg/kernels.cpp            # autotuner sample counters
  )
  hits="$(grep -rl 'memory_order_relaxed' src \
          | grep -vxF -e "$(printf '%s\n' "${relaxed_ok[@]}")" || true)"
  if [[ -n "$hits" ]]; then
    echo "lint: memory_order_relaxed outside the audited allowlist:" >&2
    echo "$hits" >&2
    fail=1
  fi

  hits="$(grep -rn '\bfopen\b' src examples | grep -v 'src/common/io\.cpp' \
          || true)"
  if [[ -n "$hits" ]]; then
    echo "lint: direct fopen outside common/io.cpp:" >&2
    echo "$hits" >&2
    fail=1
  fi

  if [[ "$fail" -ne 0 ]]; then
    echo "lint stage failed" >&2
    exit 1
  fi
  echo "lint stage passed"
}

if [[ "${1:-}" == "--lint" ]]; then
  lint
  exit 0
fi

# --- tier 1: release build, full test suite ----------------------------------
run cmake -B build -S . -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
run cmake --build build -j
run ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ "${1:-}" == "--tier1" ]]; then
  echo "tier-1 sweep passed"
  exit 0
fi

lint

# --- kernel parity + DAG verifier at a second optimization level --------------
run cmake --preset relassert
run cmake --build --preset relassert -j
run ctest --test-dir build-relassert --output-on-failure -L 'kernels|analysis'

# --- sanitizer sweeps over the guarded subsystems ----------------------------
for preset in asan tsan; do
  run cmake --preset "$preset"
  run cmake --build --preset "$preset" -j
  if [[ "$preset" == "tsan" ]]; then
    # Force the dynamic shadow checker on for every scheduler run in the
    # sweep: TSan races the checker's own atomics while the checker
    # cross-checks the executed schedule against the declared effects.
    # The serve suite rides along — the sampling service must be TSan-clean
    # under concurrent clients.
    run env EXACLIM_VERIFY=dynamic \
        ctest --test-dir "build-$preset" --output-on-failure \
        -L 'fault|determinism|runtime|kernels|analysis|serve'
  else
    run ctest --test-dir "build-$preset" --output-on-failure \
        -L 'fault|determinism|runtime|kernels|analysis|serve'
  fi
done

# --- serve smoke with the dynamic shadow checker ------------------------------
# One end-to-end serving pass (release build) with EXACLIM_VERIFY=dynamic:
# every sampling DAG the service executes is cross-checked against its
# declared tile effects while real batches flow.
run env EXACLIM_VERIFY=dynamic ./build/serve_test \
    --gtest_filter='ServeTest.CountersAccountForEveryRequestUnderConcurrentClients'

echo "all sweeps passed"
