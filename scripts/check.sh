#!/usr/bin/env bash
# Full robustness gate: the tier-1 build + test sweep, then the concurrency
# and fault/determinism suites under the sanitizer presets.
#
#   scripts/check.sh            # tier-1 + kernels + asan + tsan sweeps
#   scripts/check.sh --tier1    # tier-1 only (what CI must always pass)
#
# The kernels stage re-runs the blocked-vs-reference parity suites under the
# relassert preset (-O2 with assertions), a different optimization level than
# tier 1 — explicit-vector kernels are the code most likely to diverge when
# the compiler changes its mind. The asan preset races the fault/recovery
# paths for lifetime bugs; the tsan preset hunts data races in the
# work-stealing runtime. The sanitizers also run the determinism suite so
# bit-reproducibility is checked under instrumented schedules, where thread
# interleavings differ most from release builds.
set -euo pipefail
cd "$(dirname "$0")/.."

run() { echo "+ $*" >&2; "$@"; }

# --- tier 1: release build, full test suite ----------------------------------
run cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
run cmake --build build -j
run ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ "${1:-}" == "--tier1" ]]; then
  echo "tier-1 sweep passed"
  exit 0
fi

# --- kernel parity at a second optimization level ----------------------------
run cmake --preset relassert
run cmake --build --preset relassert -j
run ctest --test-dir build-relassert --output-on-failure -L kernels

# --- sanitizer sweeps over the guarded subsystems ----------------------------
for preset in asan tsan; do
  run cmake --preset "$preset"
  run cmake --build --preset "$preset" -j
  run ctest --test-dir "build-$preset" --output-on-failure \
      -L 'fault|determinism|runtime|kernels'
done

echo "all sweeps passed"
